"""Unit tests for loss functions, with numerical gradient verification."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataShapeError
from repro.nn import (
    contrastive_loss,
    distillation_loss,
    mse_loss,
    softmax,
    softmax_cross_entropy,
)


def finite_diff(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
    return grad


class TestContrastiveLoss:
    def test_zero_for_identical_positives(self, rng):
        z = rng.normal(size=(4, 8))
        loss, ga, gb = contrastive_loss(z, z.copy(), np.ones(4))
        assert loss == pytest.approx(0.0, abs=1e-8)

    def test_zero_for_distant_negatives(self, rng):
        za = rng.normal(size=(3, 4))
        zb = za + 100.0
        loss, ga, gb = contrastive_loss(za, zb, np.zeros(3), margin=1.0)
        assert loss == pytest.approx(0.0, abs=1e-8)
        assert np.allclose(ga, 0.0)

    def test_positive_pairs_penalized_by_distance(self, rng):
        za = rng.normal(size=(2, 4))
        near = za + 0.1
        far = za + 5.0
        loss_near, *_ = contrastive_loss(za, near, np.ones(2))
        loss_far, *_ = contrastive_loss(za, far, np.ones(2))
        assert loss_far > loss_near

    def test_negatives_inside_margin_penalized(self, rng):
        za = rng.normal(size=(2, 4))
        zb = za + 0.01
        loss, *_ = contrastive_loss(za, zb, np.zeros(2), margin=1.0)
        assert loss > 0.5  # nearly the full margin^2

    def test_gradient_check_za(self, rng):
        za = rng.normal(size=(4, 3))
        zb = rng.normal(size=(4, 3))
        same = np.array([1, 0, 1, 0])

        analytic = contrastive_loss(za, zb, same)[1]
        numeric = finite_diff(
            lambda z: contrastive_loss(z, zb, same)[0], za
        )
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_gradient_check_zb(self, rng):
        za = rng.normal(size=(4, 3))
        zb = rng.normal(size=(4, 3))
        same = np.array([0, 1, 0, 1])
        analytic = contrastive_loss(za, zb, same)[2]
        numeric = finite_diff(
            lambda z: contrastive_loss(za, z, same)[0], zb
        )
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_grad_antisymmetry(self, rng):
        za, zb = rng.normal(size=(5, 4)), rng.normal(size=(5, 4))
        same = rng.integers(0, 2, size=5)
        _, ga, gb = contrastive_loss(za, zb, same)
        assert np.allclose(ga, -gb)

    def test_empty_batch(self):
        loss, ga, gb = contrastive_loss(
            np.zeros((0, 4)), np.zeros((0, 4)), np.zeros(0)
        )
        assert loss == 0.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            contrastive_loss(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)),
                             np.ones(2))

    def test_same_length_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            contrastive_loss(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)),
                             np.ones(3))

    def test_bad_margin_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            contrastive_loss(np.ones((1, 2)), np.ones((1, 2)), np.ones(1),
                             margin=0.0)


class TestDistillationLoss:
    def test_zero_when_matching(self, rng):
        z = rng.normal(size=(3, 5))
        loss, grad = distillation_loss(z, z.copy())
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient_check(self, rng):
        zs = rng.normal(size=(3, 4))
        zt = rng.normal(size=(3, 4))
        analytic = distillation_loss(zs, zt)[1]
        numeric = finite_diff(lambda z: distillation_loss(z, zt)[0], zs)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_loss_is_mse(self, rng):
        zs = rng.normal(size=(2, 3))
        zt = rng.normal(size=(2, 3))
        loss, _ = distillation_loss(zs, zt)
        assert loss == pytest.approx(float(np.mean((zs - zt) ** 2)))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            distillation_loss(rng.normal(size=(2, 3)), rng.normal(size=(3, 3)))

    def test_empty(self):
        loss, grad = distillation_loss(np.zeros((0, 4)), np.zeros((0, 4)))
        assert loss == 0.0


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 4)) * 10)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stability_with_huge_logits(self):
        probs = softmax(np.array([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 1] > probs[0, 0]


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 3))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss == pytest.approx(np.log(3), rel=1e-6)

    def test_gradient_check(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        analytic = softmax_cross_entropy(logits, labels)[1]
        numeric = finite_diff(
            lambda l: softmax_cross_entropy(l, labels)[0], logits
        )
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_out_of_range_labels_rejected(self, rng):
        with pytest.raises(DataShapeError):
            softmax_cross_entropy(rng.normal(size=(2, 3)), np.array([0, 3]))

    def test_label_length_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            softmax_cross_entropy(rng.normal(size=(2, 3)), np.array([0]))


class TestMSELoss:
    def test_gradient_check(self, rng):
        pred = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        analytic = mse_loss(pred, target)[1]
        numeric = finite_diff(lambda p: mse_loss(p, target)[0], pred)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_zero_at_target(self, rng):
        x = rng.normal(size=(2, 2))
        assert mse_loss(x, x.copy())[0] == 0.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))
