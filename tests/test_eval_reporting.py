"""Unit tests for the table renderer."""

import pytest

from repro.eval import format_cell, render_table
from repro.exceptions import DataShapeError


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(0.123456, precision=3) == "0.123"

    def test_nan_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("walk") == "walk"

    def test_bool(self):
        assert format_cell(True) == "True"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["name", "value"],
            [["walk", 0.5], ["a_long_activity_name", 1.0]],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # All lines equal width given ljust alignment of the longest cell.
        assert lines[0].index("value") == lines[2].index("0.500")

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_rule_under_header(self):
        text = render_table(["ab"], [["x"]])
        assert set(text.splitlines()[1]) == {"-"}

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            render_table(["a", "b"], [[1]])

    def test_precision_forwarded(self):
        text = render_table(["x"], [[0.123456]], precision=5)
        assert "0.12346" in text
