"""Property-based tests for compression and federated-averaging algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.federated import (
    apply_delta,
    clip_delta_norm,
    federated_average,
    state_delta,
)
from repro.nn import (
    build_mlp,
    prune_network,
    quantize_tensor,
    sparsity_of,
)

bounded_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


def tensor_strategy(max_rows=6, max_cols=6):
    return st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)).flatmap(
        lambda shape: arrays(np.float64, shape, elements=bounded_floats)
    )


def state_strategy(n_states=1):
    """Strategy producing lists of compatible state dicts."""
    return st.tuples(
        st.integers(1, 4), st.integers(1, 4), st.integers(0, 10_000)
    ).map(
        lambda args: [
            {
                "w": np.random.default_rng(args[2] + i).normal(
                    size=(args[0], args[1])
                ),
                "b": np.random.default_rng(args[2] + 100 + i).normal(
                    size=(args[1],)
                ),
            }
            for i in range(n_states)
        ]
    )


class TestQuantizationProperties:
    @settings(max_examples=50, deadline=None)
    @given(arr=tensor_strategy())
    def test_error_bounded_by_half_step(self, arr):
        qt = quantize_tensor(arr)
        assert np.abs(qt.dequantize() - arr).max() <= qt.scale / 2 + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(arr=tensor_strategy())
    def test_int8_range(self, arr):
        qt = quantize_tensor(arr)
        assert qt.values.dtype == np.int8
        assert qt.values.min() >= -128
        assert qt.values.max() <= 127

    @settings(max_examples=50, deadline=None)
    @given(arr=tensor_strategy())
    def test_dequantize_preserves_order_of_extremes(self, arr):
        qt = quantize_tensor(arr)
        deq = qt.dequantize()
        # argmax/argmin may shift among near-ties, but values agree closely.
        assert deq.max() == pytest.approx(arr.max(), abs=qt.scale)
        assert deq.min() == pytest.approx(arr.min(), abs=qt.scale)


class TestPruningProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        sparsity=st.floats(0.0, 0.95),
        seed=st.integers(0, 1000),
    )
    def test_sparsity_close_to_target(self, sparsity, seed):
        net = build_mlp(8, hidden_dims=(16,), output_dim=4, rng=seed)
        pruned = prune_network(net, sparsity)
        assert sparsity_of(pruned) == pytest.approx(sparsity, abs=0.08)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_pruning_monotone_in_sparsity(self, seed):
        net = build_mlp(8, hidden_dims=(16,), output_dim=4, rng=seed)
        levels = [sparsity_of(prune_network(net, s)) for s in (0.2, 0.5, 0.8)]
        assert levels[0] <= levels[1] <= levels[2]


class TestFedAvgProperties:
    @settings(max_examples=40, deadline=None)
    @given(states=state_strategy(n_states=3))
    def test_average_of_identical_is_identity(self, states):
        same = [states[0]] * 3
        avg = federated_average(same)
        for key in states[0]:
            assert np.allclose(avg[key], states[0][key])

    @settings(max_examples=40, deadline=None)
    @given(states=state_strategy(n_states=3))
    def test_average_within_componentwise_bounds(self, states):
        avg = federated_average(states)
        for key in states[0]:
            stack = np.stack([s[key] for s in states])
            assert np.all(avg[key] >= stack.min(axis=0) - 1e-12)
            assert np.all(avg[key] <= stack.max(axis=0) + 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(states=state_strategy(n_states=2))
    def test_delta_apply_inverse(self, states):
        a, b = states
        rebuilt = apply_delta(a, state_delta(b, a))
        for key in b:
            assert np.allclose(rebuilt[key], b[key])

    @settings(max_examples=40, deadline=None)
    @given(
        states=state_strategy(n_states=2),
        max_norm=st.floats(0.01, 10.0),
    )
    def test_clip_never_exceeds_norm(self, states, max_norm):
        delta = state_delta(states[1], states[0])
        clipped = clip_delta_norm(delta, max_norm)
        total = sum(float((v * v).sum()) for v in clipped.values())
        assert np.sqrt(total) <= max_norm + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(states=state_strategy(n_states=2))
    def test_clip_preserves_direction(self, states):
        delta = state_delta(states[1], states[0])
        clipped = clip_delta_norm(delta, 0.01)
        for key in delta:
            # Sign pattern preserved (pure scaling).
            assert np.all(np.sign(clipped[key]) == np.sign(delta[key]))

    @settings(max_examples=40, deadline=None)
    @given(
        states=state_strategy(n_states=2),
        w=st.floats(0.1, 10.0),
    )
    def test_weight_scale_invariance(self, states, w):
        """Scaling all weights by a constant leaves the average unchanged."""
        a = federated_average(states, weights=[1.0, 2.0])
        b = federated_average(states, weights=[w, 2.0 * w])
        for key in a:
            assert np.allclose(a[key], b[key])
