"""Tests for cohort-aware fleet serving through a ModelRegistry.

The acceptance bar: a mixed-cohort ``FleetServer.step_stream`` produces
verdicts identical (1e-9) to routing each session through its cohort's
engine individually, while issuing exactly one batched engine call per
distinct model per tick; held sessions keep their pinned package across a
hot-swap until ``finish_stream``.
"""

import numpy as np
import pytest

from repro.core import FleetServer, InferenceEngine
from repro.edge_runtime import EdgeRuntime
from repro.eval import run_cohort_stream_protocol, run_stream_protocol
from repro.exceptions import (
    ConfigurationError,
    DataShapeError,
    UnknownCohortError,
)
from repro.preprocessing import PreprocessingPipeline
from repro.serving import (
    DEFAULT_COHORT,
    ModelRegistry,
    backbone_fingerprint_of,
)

PARITY = dict(rtol=0.0, atol=1e-9)


@pytest.fixture
def engines(scenario):
    """Two distinct engines: the base package and a 6-class variant."""
    edge_a = scenario.fresh_edge(rng=1)
    edge_b = scenario.fresh_edge(rng=2)
    edge_b.learn_activity(
        "gesture_hi", scenario.sensor_device.record("gesture_hi", 20.0)
    )
    assert len(edge_b.engine.class_names) == len(edge_a.engine.class_names) + 1
    return edge_a.engine, edge_b.engine


@pytest.fixture
def registry(engines):
    engine_a, engine_b = engines
    reg = ModelRegistry(default_cohort="a")
    reg.publish("a", engine_a)
    reg.publish("b", engine_b)
    return reg


def _count_calls(monkeypatch, engine, counter, key):
    original = engine.infer_features

    def counted(features):
        counter[key] += 1
        return original(features)

    monkeypatch.setattr(engine, "infer_features", counted)


class TestMixedCohortStepStream:
    def test_acceptance_parity_with_individual_routing(
        self, registry, engines, scenario, monkeypatch
    ):
        """Mixed-cohort serving == each session on its own cohort engine."""
        engine_a, engine_b = engines
        calls = {"a": 0, "b": 0}
        _count_calls(monkeypatch, engine_a, calls, "a")
        _count_calls(monkeypatch, engine_b, calls, "b")
        server = FleetServer(registry)
        server.connect_many(["a1", "a2"], cohort="a")
        server.connect("b1", cohort="b")
        recordings = {
            "a1": scenario.sensor_device.record("walk", 5.0).data,
            "a2": scenario.sensor_device.record("run", 5.0).data,
            "b1": scenario.sensor_device.record("gesture_hi", 5.0).data,
        }
        got = {sid: [] for sid in recordings}
        ticks = 0
        for start in range(0, 600, 100):
            tick = {
                sid: data[start : start + 100]
                for sid, data in recordings.items()
            }
            ticks += 1
            for sid, verdicts in server.step_stream(tick).items():
                got[sid].extend(verdicts)
        # one batched call per distinct model per tick; ticks where a
        # model completed no window skip that model's call entirely
        assert calls["a"] <= ticks and calls["b"] <= ticks
        assert calls["a"] == calls["b"] == 5  # 600 samples -> 5 windows
        by_cohort = {"a1": engine_a, "a2": engine_a, "b1": engine_b}
        for sid, data in recordings.items():
            ref = by_cohort[sid].infer_stream(data)
            assert [v.activity for v in got[sid]] == ref.names
            assert [v.accepted for v in got[sid]] == list(ref.accepted)
            np.testing.assert_allclose(
                [v.confidence for v in got[sid]], ref.confidences, **PARITY
            )

    def test_cohorts_sharing_an_engine_share_a_batch(
        self, engines, scenario, monkeypatch
    ):
        engine_a, _ = engines
        registry = ModelRegistry(default_cohort="x")
        registry.publish("x", engine_a)
        registry.publish("y", engine_a)  # same engine object, two cohorts
        calls = {"n": 0}
        _count_calls(monkeypatch, engine_a, calls, "n")
        server = FleetServer(registry)
        server.connect("sx", cohort="x")
        server.connect("sy", cohort="y")
        data = scenario.sensor_device.record("walk", 2.0).data
        verdicts = server.step_stream({"sx": data, "sy": data})
        assert calls["n"] == 1
        assert len(verdicts["sx"]) == len(verdicts["sy"]) == 2

    def test_per_cohort_stride_mapping(self, registry, scenario):
        server = FleetServer(registry)
        server.connect("a1", cohort="a")
        server.connect("b1", cohort="b")
        data = scenario.sensor_device.record("walk", 2.0).data
        verdicts = server.step_stream(
            {"a1": data, "b1": data}, stride={"a": 60, "b": 120}
        )
        assert server.session("a1").stream.stride == 60
        assert server.session("b1").stream.stride == 120
        # Cohort "a" streams at an overlapping stride: the zero-phase
        # denoiser stream holds back its lookahead until the flush.
        flushed_a = server.finish_stream("a1")
        assert len(verdicts["a1"]) + len(flushed_a) == 3  # (240-120)//60 + 1
        assert len(verdicts["b1"]) == 2

    def test_stride_map_omitting_a_cohort_continues_open_streams(
        self, registry, scenario
    ):
        """A cohort absent from the stride map keeps its locked stride."""
        server = FleetServer(registry)
        server.connect("a1", cohort="a")
        data = scenario.sensor_device.record("walk", 3.0).data
        server.step_stream({"a1": data[:200]}, stride={"a": 60})
        # next tick's map names only the other cohort: a1 just continues
        verdicts = server.step_stream(
            {"a1": data[200:360]}, stride={"b": 120}
        )
        assert server.session("a1").stream.stride == 60
        assert len(verdicts["a1"]) > 0

    def test_failing_model_does_not_discard_healthy_cohorts(
        self, registry, engines, scenario, monkeypatch
    ):
        """Cohort B's engine raising mid-tick must not desync cohort A."""
        engine_a, engine_b = engines
        server = FleetServer(registry)
        server.connect("a1", cohort="a")
        server.connect("b1", cohort="b")
        data = scenario.sensor_device.record("walk", 4.0).data
        server.step_stream({"a1": data[:200], "b1": data[:200]})

        def boom(features):
            raise RuntimeError("model fell over")

        monkeypatch.setattr(engine_b, "infer_features", boom)
        with pytest.raises(RuntimeError, match="fell over"):
            server.step_stream({"a1": data[200:360], "b1": data[200:360]})
        # a1's verdicts were folded (smoother/stream stay consistent)...
        a1 = server.session("a1")
        assert a1.windows_seen == 3
        assert a1.last_verdict is not None
        assert server.cohort_summary()["a"]["windows_served"] == 3.0
        # ...and after resetting the failed session, serving continues
        monkeypatch.undo()
        server.session("b1").reset()
        more = server.step_stream({"a1": data[360:480], "b1": data[:240]})
        assert len(more["a1"]) == 1 and len(more["b1"]) == 2
        # a1's full observed sequence still equals the monolithic pass
        ref = engine_a.infer_stream(data)
        assert a1.windows_seen == len(ref.names)

    def test_empty_tick_and_unknown_session_still_guarded(self, registry):
        server = FleetServer(registry)
        assert server.step_stream({}) == {}
        with pytest.raises(ConfigurationError, match="not connected"):
            server.step_stream({"ghost": np.zeros((10, 22))})


class TestTickAccountingConsistency:
    """step and step_stream agree on failure isolation + tick accounting."""

    def test_step_failing_model_does_not_discard_healthy_cohorts(
        self, registry, engines, scenario, monkeypatch
    ):
        """Like step_stream: healthy cohorts fold, then the error re-raises."""
        _, engine_b = engines
        server = FleetServer(registry)
        server.connect("a1", cohort="a")
        server.connect("b1", cohort="b")
        window = scenario.sensor_device.record("walk", 1.0).data[:120]

        def boom(windows):
            raise RuntimeError("model fell over")

        monkeypatch.setattr(engine_b, "infer_windows", boom)
        with pytest.raises(RuntimeError, match="fell over"):
            server.step({"a1": window, "b1": window})
        a1 = server.session("a1")
        assert a1.windows_seen == 1 and a1.last_verdict is not None
        assert server.ticks == 1  # the tick served cohort a
        assert server.summary()["windows_served"] == 1.0
        assert server.cohort_summary()["a"]["windows_served"] == 1.0
        assert server.cohort_summary()["b"]["windows_served"] == 0.0

    def test_step_all_models_failing_leaves_counters_untouched(
        self, registry, engines, scenario, monkeypatch
    ):
        """A tick on which every model failed never happened, counter-wise."""
        engine_a, engine_b = engines
        server = FleetServer(registry)
        server.connect("a1", cohort="a")
        server.connect("b1", cohort="b")
        window = scenario.sensor_device.record("walk", 1.0).data[:120]

        def boom(windows):
            raise RuntimeError("model fell over")

        monkeypatch.setattr(engine_a, "infer_windows", boom)
        monkeypatch.setattr(engine_b, "infer_windows", boom)
        with pytest.raises(RuntimeError):
            server.step({"a1": window, "b1": window})
        assert server.ticks == 0
        assert server.serve_ms == 0.0
        assert server.summary()["windows_served"] == 0.0
        assert server.session("a1").windows_seen == 0

    def test_step_stream_all_models_failing_matches_step_accounting(
        self, registry, engines, scenario, monkeypatch
    ):
        engine_a, engine_b = engines
        server = FleetServer(registry)
        server.connect("a1", cohort="a")
        server.connect("b1", cohort="b")
        data = scenario.sensor_device.record("walk", 2.0).data

        def boom(features):
            raise RuntimeError("model fell over")

        monkeypatch.setattr(engine_a, "infer_features", boom)
        monkeypatch.setattr(engine_b, "infer_features", boom)
        with pytest.raises(RuntimeError):
            server.step_stream({"a1": data, "b1": data})
        assert server.ticks == 0
        assert server.serve_ms == 0.0
        assert server.summary()["windows_served"] == 0.0


class TestCohortBinding:
    def test_connect_unknown_cohort_rejected_up_front(self, registry):
        server = FleetServer(registry)
        with pytest.raises(UnknownCohortError, match="'pocket'"):
            server.connect("s", cohort="pocket")
        assert server.n_sessions == 0

    def test_default_cohort_binding(self, registry):
        server = FleetServer(registry)
        session = server.connect("s")
        assert session.cohort == "a"

    def test_single_engine_server_serves_default_cohort(self, edge):
        server = FleetServer(edge.engine)
        assert server.connect("s").cohort == DEFAULT_COHORT
        with pytest.raises(UnknownCohortError, match="'wrist'"):
            server.connect("t", cohort="wrist")

    def test_unpublished_cohort_fails_on_step(
        self, registry, scenario
    ):
        """Unknown cohort at serve time (unpublished after connect)."""
        server = FleetServer(registry)
        server.connect("b1", cohort="b")
        window = scenario.sensor_device.record("walk", 1.0).data[:120]
        registry.unpublish("b")
        with pytest.raises(UnknownCohortError, match="'b'"):
            server.step({"b1": window})
        with pytest.raises(UnknownCohortError, match="'b'"):
            server.step_stream({"b1": window})

    def test_open_stream_outlives_unpublish(self, registry, scenario):
        """A held session keeps serving from its pinned engine."""
        server = FleetServer(registry)
        server.connect("b1", cohort="b")
        data = scenario.sensor_device.record("gesture_hi", 3.0).data
        server.step_stream({"b1": data[:200]})
        registry.unpublish("b")
        verdicts = server.step_stream({"b1": data[200:360]})  # still pinned
        assert len(verdicts["b1"]) == 2
        assert server.finish_stream("b1") == []


class TestHotSwap:
    def test_held_sessions_keep_pinned_package_until_finish(
        self, engines, scenario
    ):
        engine_v1, engine_v2 = engines
        registry = ModelRegistry(default_cohort="a")
        registry.publish("a", engine_v1)
        server = FleetServer(registry)
        session = server.connect("s")
        data = scenario.sensor_device.record("walk", 4.0).data
        server.step_stream({"s": data[:100]})
        assert session.stream.engine is engine_v1
        registry.publish("a", engine_v2)  # hot-swap mid-stream
        got = server.step_stream({"s": data[100:300]})["s"]
        assert session.stream.engine is engine_v1  # pinned
        ref = engine_v1.infer_stream(data[:240])
        assert [v.activity for v in got] == ref.names[-len(got):]
        server.finish_stream("s")
        server.step_stream({"s": data[:100]})  # fresh stream
        assert session.stream.engine is engine_v2

    def test_windowed_step_swaps_immediately(self, engines, scenario):
        engine_v1, engine_v2 = engines
        registry = ModelRegistry(default_cohort="a")
        registry.publish("a", engine_v1)
        server = FleetServer(registry)
        server.connect("s")
        window = scenario.sensor_device.record("walk", 1.0).data[:120]
        server.step({"s": window})
        registry.publish("a", engine_v2)
        verdict = server.step({"s": window})["s"]
        ref = engine_v2.infer_windows(window[None, :, :])
        assert verdict.activity == ref.names[0]


class TestBackboneFusion:
    """Same-backbone cohorts fuse into one embedding pass per tick."""

    @pytest.fixture
    def shared_engines(self, scenario):
        """Two cohort heads over byte-identical backbone clones."""
        engine_x = scenario.fresh_edge(rng=1).engine
        engine_y = scenario.fresh_edge(rng=3).engine
        assert backbone_fingerprint_of(engine_x) == backbone_fingerprint_of(
            engine_y
        )
        return engine_x, engine_y

    @pytest.fixture
    def shared_registry(self, shared_engines):
        engine_x, engine_y = shared_engines
        reg = ModelRegistry(default_cohort="x")
        reg.publish("x", engine_x)
        reg.publish("y", engine_y)
        return reg

    def test_fused_tick_one_embedding_pass_and_parity(
        self, shared_registry, shared_engines, scenario, monkeypatch
    ):
        """One matrix pass serves both cohorts; verdicts stay pinned."""
        engine_x, engine_y = shared_engines
        data = scenario.sensor_device.record("walk", 3.0).data
        refs = {"sx": engine_x.infer_stream(data),
                "sy": engine_y.infer_stream(data)}
        embeds = {"n": 0}
        for engine in (engine_x, engine_y):
            original = engine.embedder.embed

            def counted(features, _original=original):
                embeds["n"] += 1
                return _original(features)

            monkeypatch.setattr(engine.embedder, "embed", counted)
        calls = {"x": 0, "y": 0}
        _count_calls(monkeypatch, engine_x, calls, "x")
        _count_calls(monkeypatch, engine_y, calls, "y")
        server = FleetServer(shared_registry)
        server.connect("sx", cohort="x")
        server.connect("sy", cohort="y")
        got = server.step_stream({"sx": data, "sy": data})
        assert embeds["n"] == 1  # one fused pass for the whole group
        assert calls == {"x": 0, "y": 0}  # the per-model path was skipped
        for sid in ("sx", "sy"):
            assert [v.activity for v in got[sid]] == refs[sid].names
            np.testing.assert_allclose(
                [v.confidence for v in got[sid]],
                refs[sid].confidences,
                **PARITY,
            )

    def test_fusion_off_serves_one_call_per_model(
        self, shared_registry, shared_engines, scenario, monkeypatch
    ):
        engine_x, engine_y = shared_engines
        calls = {"x": 0, "y": 0}
        _count_calls(monkeypatch, engine_x, calls, "x")
        _count_calls(monkeypatch, engine_y, calls, "y")
        server = FleetServer(shared_registry, shared_backbone=False)
        server.connect("sx", cohort="x")
        server.connect("sy", cohort="y")
        data = scenario.sensor_device.record("walk", 2.0).data
        server.step_stream({"sx": data, "sy": data})
        assert calls == {"x": 1, "y": 1}

    def test_hot_swap_head_does_not_rebind_sibling_streams(
        self, shared_registry, shared_engines, scenario
    ):
        """A new head for one cohort leaves the group's siblings pinned."""
        engine_x, engine_y = shared_engines
        new_y = scenario.fresh_edge(rng=4).engine
        server = FleetServer(shared_registry)
        server.connect("sx", cohort="x")
        server.connect("sy", cohort="y")
        data = scenario.sensor_device.record("walk", 4.0).data
        got_x = list(
            server.step_stream({"sx": data[:200], "sy": data[:200]})["sx"]
        )
        shared_registry.publish("y", new_y)  # same backbone, new head
        assert len(shared_registry.backbone_groups()) == 1  # group intact
        more = server.step_stream({"sx": data[200:440], "sy": data[200:440]})
        got_x.extend(more["sx"])
        assert server.session("sx").stream.engine is engine_x  # sibling
        assert server.session("sy").stream.engine is engine_y  # pinned
        server.finish_stream("sy")
        server.step_stream({"sy": data[:240]})  # fresh stream rebinds
        assert server.session("sy").stream.engine is new_y
        # the sibling's fused verdicts equal its monolithic pass
        ref = engine_x.infer_stream(data[:440])
        assert [v.activity for v in got_x] == ref.names
        np.testing.assert_allclose(
            [v.confidence for v in got_x], ref.confidences, **PARITY
        )

    def test_publishing_new_backbone_splits_group(
        self, shared_registry, shared_engines, engines, scenario, monkeypatch
    ):
        """A retrained backbone falls back to one call per model."""
        engine_x, _ = shared_engines
        _, engine_b = engines  # fine-tuned backbone: distinct fingerprint
        fp_x = backbone_fingerprint_of(engine_x)
        fp_b = backbone_fingerprint_of(engine_b)
        assert fp_b != fp_x
        shared_registry.publish("y", engine_b)
        groups = shared_registry.backbone_groups()
        assert groups[fp_x] == ("x",)
        assert groups[fp_b] == ("y",)
        calls = {"x": 0, "b": 0}
        _count_calls(monkeypatch, engine_x, calls, "x")
        _count_calls(monkeypatch, engine_b, calls, "b")
        server = FleetServer(shared_registry)
        server.connect("sx", cohort="x")
        server.connect("sy", cohort="y")
        data = scenario.sensor_device.record("walk", 2.0).data
        server.step_stream({"sx": data, "sy": data})
        assert calls == {"x": 1, "b": 1}  # split: per-model batches again


class TestMixedCohortStep:
    def test_window_shapes_may_differ_across_cohorts(
        self, scenario, edge
    ):
        """Device classes with different window lengths share a tick."""
        short_pipeline = PreprocessingPipeline(window_len=60)
        short_pipeline.fit_normalizer(scenario.campaign.windows)
        short_engine = InferenceEngine(
            edge.embedder, edge.ncm, pipeline=short_pipeline
        )
        registry = ModelRegistry(default_cohort="long")
        registry.publish("long", edge.engine)
        registry.publish("short", short_engine)
        server = FleetServer(registry)
        server.connect("l", cohort="long")
        server.connect("s", cohort="short")
        data = scenario.sensor_device.record("walk", 1.0).data
        verdicts = server.step({"l": data[:120], "s": data[:60]})
        assert set(verdicts) == {"l", "s"}
        # within one cohort's batch, shapes must still agree
        server.connect("l2", cohort="long")
        with pytest.raises(DataShapeError, match="session 'l2'"):
            server.step({"l": data[:120], "l2": data[:60]})

    def test_per_cohort_rollups(self, registry, scenario):
        server = FleetServer(registry)
        server.connect_many(["a1", "a2"], cohort="a")
        server.connect("b1", cohort="b")
        window = scenario.sensor_device.record("walk", 1.0).data[:120]
        server.step({"a1": window, "a2": window, "b1": window})
        server.step({"a1": window})
        rollup = server.cohort_summary()
        assert rollup["a"]["sessions"] == 2.0
        assert rollup["a"]["windows_served"] == 3.0
        assert rollup["b"]["sessions"] == 1.0
        assert rollup["b"]["windows_served"] == 1.0
        total = server.summary()
        assert total["windows_served"] == 4.0
        assert (
            rollup["a"]["rejected_windows"] + rollup["b"]["rejected_windows"]
            == total["rejected_windows"]
        )


class TestCohortEvalProtocol:
    def test_per_cohort_rollups_match_single_model_protocol(
        self, registry, engines, scenario
    ):
        engine_a, engine_b = engines
        segments = {
            "a": [
                ("walk", scenario.sensor_device.record("walk", 3.0).data),
                ("run", scenario.sensor_device.record("run", 3.0).data),
            ],
            "b": [
                (
                    "gesture_hi",
                    scenario.sensor_device.record("gesture_hi", 3.0).data,
                ),
            ],
        }
        result = run_cohort_stream_protocol(registry, segments)
        for cohort, engine in (("a", engine_a), ("b", engine_b)):
            ref = run_stream_protocol(engine, segments[cohort])
            got = result.cohort(cohort)
            assert got.n_windows == ref.n_windows
            assert got.overall_accuracy == pytest.approx(ref.overall_accuracy)
            assert got.per_activity_windows == ref.per_activity_windows
        combined = result.combined
        assert combined.n_windows == sum(
            r.n_windows for r in result.per_cohort.values()
        )
        # exact weighted combination, not an average of averages
        expected = sum(
            r.overall_accuracy * r.n_windows
            for r in result.per_cohort.values()
        ) / combined.n_windows
        assert combined.overall_accuracy == pytest.approx(expected)

    def test_unknown_cohort_and_empty_inputs(self, registry):
        with pytest.raises(ConfigurationError):
            run_cohort_stream_protocol(registry, {})
        with pytest.raises(ConfigurationError, match="chunk_len"):
            run_cohort_stream_protocol(
                registry,
                {"a": [("walk", np.zeros((240, 22)))]},
                chunk_len=0,
            )
        with pytest.raises(UnknownCohortError):
            run_cohort_stream_protocol(
                registry, {"ghost": [("walk", np.zeros((240, 22)))]}
            )
        with pytest.raises(ConfigurationError, match="no segments"):
            run_cohort_stream_protocol(registry, {"a": []})

    def test_missing_cohort_lookup_names_cohorts(self, registry, scenario):
        segments = {
            "a": [("walk", scenario.sensor_device.record("walk", 2.0).data)]
        }
        result = run_cohort_stream_protocol(registry, segments)
        with pytest.raises(ConfigurationError, match="'b'"):
            result.cohort("b")


class TestEdgeRuntimeCohorts:
    def test_for_cohort_provisions_from_registry(self, scenario):
        registry = ModelRegistry(default_cohort="wrist")
        registry.publish("wrist", scenario.package)
        runtime = EdgeRuntime.for_cohort(registry)
        assert runtime.cohort == "wrist"
        assert runtime.edge.is_ready
        assert runtime.check_storage() > 0

    def test_for_cohort_bare_engine_raises(self, edge):
        registry = ModelRegistry(default_cohort="wrist")
        registry.publish("wrist", edge.engine)
        with pytest.raises(ConfigurationError, match="bare engine"):
            EdgeRuntime.for_cohort(registry, "wrist")

    def test_for_cohort_unknown_cohort_raises(self, scenario):
        registry = ModelRegistry()
        registry.publish(DEFAULT_COHORT, scenario.package)
        with pytest.raises(UnknownCohortError):
            EdgeRuntime.for_cohort(registry, "ghost")

    def test_standalone_runtime_has_no_cohort(self, edge):
        assert EdgeRuntime(edge).cohort is None
