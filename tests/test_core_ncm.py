"""Unit tests for the NCM classifier."""

import numpy as np
import pytest

from repro.core import NCMClassifier, SupportSet
from repro.exceptions import (
    DataShapeError,
    NotFittedError,
    UnknownActivityError,
)
from repro.nn import SiameseEmbedder, build_mlp


@pytest.fixture
def fitted(rng):
    """An NCM fitted on two well-separated blobs."""
    emb = np.concatenate([rng.normal(size=(10, 4)),
                          rng.normal(size=(10, 4)) + 10.0])
    labels = np.array([0] * 10 + [1] * 10)
    return NCMClassifier().fit(emb, labels, ["near", "far"]), emb, labels


class TestFit:
    def test_prototypes_are_class_means(self, fitted):
        ncm, emb, labels = fitted
        assert np.allclose(ncm.prototypes_[0], emb[labels == 0].mean(axis=0))
        assert np.allclose(ncm.prototypes_[1], emb[labels == 1].mean(axis=0))

    def test_class_metadata(self, fitted):
        ncm, *_ = fitted
        assert ncm.class_names_ == ("near", "far")
        assert ncm.n_classes == 2
        assert ncm.is_fitted

    def test_missing_class_rejected(self, rng):
        emb = rng.normal(size=(5, 3))
        with pytest.raises(DataShapeError, match="no embeddings"):
            NCMClassifier().fit(emb, np.zeros(5, dtype=int), ["a", "b"])

    def test_empty_class_names_rejected(self, rng):
        with pytest.raises(DataShapeError):
            NCMClassifier().fit(rng.normal(size=(2, 3)), np.zeros(2, dtype=int), [])

    def test_label_shape_mismatch_rejected(self, rng):
        with pytest.raises(DataShapeError):
            NCMClassifier().fit(rng.normal(size=(3, 2)), np.zeros(2, dtype=int),
                                ["a"])


class TestPredict:
    def test_training_points_classified_correctly(self, fitted):
        ncm, emb, labels = fitted
        assert np.array_equal(ncm.predict(emb), labels)

    def test_predict_names(self, fitted, rng):
        ncm, *_ = fitted
        names = ncm.predict_names(np.array([[0.0, 0, 0, 0], [10.0, 10, 10, 10]]))
        assert names == ["near", "far"]

    def test_distances_shape_and_order(self, fitted):
        ncm, emb, _ = fitted
        dists = ncm.distances(emb[:3])
        assert dists.shape == (3, 2)
        assert np.all(dists >= 0.0)

    def test_prediction_is_argmin_distance(self, fitted, rng):
        ncm, *_ = fitted
        x = rng.normal(size=(6, 4)) * 5
        assert np.array_equal(
            ncm.predict(x), np.argmin(ncm.distances(x), axis=1)
        )

    def test_proba_sums_to_one(self, fitted, rng):
        ncm, *_ = fitted
        probs = ncm.predict_proba(rng.normal(size=(4, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_proba_favors_nearest(self, fitted):
        ncm, *_ = fitted
        probs = ncm.predict_proba(np.zeros((1, 4)))
        assert probs[0, 0] > probs[0, 1]

    def test_bad_temperature_rejected(self, fitted):
        ncm, *_ = fitted
        with pytest.raises(DataShapeError):
            ncm.predict_proba(np.zeros((1, 4)), temperature=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            NCMClassifier().predict(np.zeros((1, 3)))

    def test_wrong_dim_rejected(self, fitted):
        ncm, *_ = fitted
        with pytest.raises(DataShapeError):
            ncm.predict(np.zeros((2, 7)))


class TestPrototypeAccess:
    def test_prototype_of(self, fitted):
        ncm, emb, labels = fitted
        assert np.allclose(ncm.prototype_of("near"), emb[labels == 0].mean(0))

    def test_unknown_name_rejected(self, fitted):
        ncm, *_ = fitted
        with pytest.raises(UnknownActivityError):
            ncm.prototype_of("mystery")

    def test_prototype_returns_copy(self, fitted):
        ncm, *_ = fitted
        p = ncm.prototype_of("near")
        p[...] = 999.0
        assert not np.allclose(ncm.prototype_of("near"), 999.0)


class TestSupportSetIntegration:
    def test_fit_from_support_set(self, rng):
        embedder = SiameseEmbedder(
            build_mlp(4, hidden_dims=(6,), output_dim=3, rng=1)
        )
        store = SupportSet(capacity_per_class=10, rng=2)
        store.add_class("a", rng.normal(size=(5, 4)))
        store.add_class("b", rng.normal(size=(5, 4)) + 8)
        ncm = NCMClassifier().fit_from_support_set(embedder, store)
        assert ncm.class_names_ == ("a", "b")
        # Prototypes must equal the mean embedding of the stored exemplars.
        za = embedder.embed(store.features_of("a"))
        assert np.allclose(ncm.prototype_of("a"), za.mean(axis=0))


class TestSerialization:
    def test_roundtrip(self, fitted, rng):
        ncm, *_ = fitted
        rebuilt = NCMClassifier.from_arrays(ncm.to_arrays())
        x = rng.normal(size=(5, 4))
        assert np.array_equal(rebuilt.predict(x), ncm.predict(x))
        assert rebuilt.class_names_ == ncm.class_names_

    def test_unfitted_serialization_rejected(self):
        with pytest.raises(NotFittedError):
            NCMClassifier().to_arrays()

    def test_corrupt_payload_rejected(self, fitted):
        ncm, *_ = fitted
        payload = ncm.to_arrays()
        payload["class_names"] = np.asarray(["only_one"], dtype=object)
        with pytest.raises(DataShapeError):
            NCMClassifier.from_arrays(payload)
