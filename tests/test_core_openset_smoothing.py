"""Unit tests for open-set rejection and prediction smoothing."""

import numpy as np
import pytest

from repro.core import (
    HysteresisSmoother,
    MajorityVoteSmoother,
    OpenSetNCM,
    UNKNOWN_LABEL,
    UNKNOWN_NAME,
    open_set_report,
)
from repro.datasets import activity_windows
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture
def open_ncm(scenario):
    edge = scenario.fresh_edge(rng=4)
    open_ncm = OpenSetNCM().fit_from_support_set(
        edge.embedder, edge.support_set
    )
    return open_ncm, edge


class TestOpenSetNCM:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            OpenSetNCM().predict(np.zeros((1, 4)))

    def test_thresholds_positive_per_class(self, open_ncm):
        ncm, edge = open_ncm
        assert ncm.thresholds_.shape == (5,)
        assert np.all(ncm.thresholds_ > 0.0)
        for name in ncm.class_names_:
            assert ncm.threshold_of(name) > 0.0

    def test_unknown_threshold_name_rejected(self, open_ncm):
        ncm, _ = open_ncm
        with pytest.raises(ConfigurationError):
            ncm.threshold_of("teleport")

    def test_known_activities_mostly_accepted(self, open_ncm, scenario):
        ncm, edge = open_ncm
        feats = edge.pipeline.process_windows(scenario.base_test.windows)
        labels = ncm.predict(edge.embedder.embed(feats))
        rejection = float(np.mean(labels == UNKNOWN_LABEL))
        assert rejection < 0.3

    def test_novel_activity_mostly_rejected(self, open_ncm, scenario):
        ncm, edge = open_ncm
        windows = activity_windows(scenario.edge_user, "gesture_hi", 15, rng=9)
        feats = edge.pipeline.process_windows(windows)
        rate = ncm.rejection_rate(edge.embedder.embed(feats))
        assert rate > 0.6

    def test_predict_names_uses_unknown(self, open_ncm, scenario):
        ncm, edge = open_ncm
        windows = activity_windows(scenario.edge_user, "jump", 8, rng=9)
        feats = edge.pipeline.process_windows(windows)
        names = ncm.predict_names(edge.embedder.embed(feats))
        assert UNKNOWN_NAME in names

    def test_accepted_labels_match_plain_ncm(self, open_ncm, scenario):
        ncm, edge = open_ncm
        feats = edge.pipeline.process_windows(scenario.base_test.windows)
        emb = edge.embedder.embed(feats)
        open_labels = ncm.predict(emb)
        plain_labels = edge.ncm.predict(emb)
        accepted = open_labels != UNKNOWN_LABEL
        assert np.array_equal(open_labels[accepted], plain_labels[accepted])

    def test_larger_slack_rejects_less(self, scenario):
        edge = scenario.fresh_edge(rng=4)
        windows = activity_windows(scenario.edge_user, "gesture_hi", 12, rng=9)
        feats = edge.pipeline.process_windows(windows)
        emb = edge.embedder.embed(feats)
        tight = OpenSetNCM(quantile=0.9, slack=1.0).fit_from_support_set(
            edge.embedder, edge.support_set
        )
        loose = OpenSetNCM(quantile=0.9, slack=10.0).fit_from_support_set(
            edge.embedder, edge.support_set
        )
        assert tight.rejection_rate(emb) >= loose.rejection_rate(emb)

    def test_refit_after_learning_accepts_new_class(self, open_ncm, scenario):
        ncm, edge = open_ncm
        train = activity_windows(scenario.edge_user, "gesture_hi", 20, rng=10)
        edge.learn_activity("gesture_hi", edge.pipeline.process_windows(train))
        refit = OpenSetNCM().fit_from_support_set(edge.embedder, edge.support_set)
        test = activity_windows(scenario.edge_user, "gesture_hi", 10, rng=11)
        emb = edge.embedder.embed(edge.pipeline.process_windows(test))
        assert refit.rejection_rate(emb) < 0.4
        assert "gesture_hi" in refit.class_names_

    def test_report_keys_and_ranges(self, open_ncm, scenario):
        ncm, edge = open_ncm
        known = edge.pipeline.process_windows(scenario.base_test.windows)
        unknown = edge.pipeline.process_windows(
            activity_windows(scenario.edge_user, "gesture_circle", 10, rng=12)
        )
        report = open_set_report(
            ncm, edge.embedder, known, scenario.base_test.labels, unknown
        )
        assert set(report) == {
            "known_accuracy", "known_rejection_rate", "unknown_rejection_rate"
        }
        for value in report.values():
            assert 0.0 <= value <= 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            OpenSetNCM(quantile=0.0)
        with pytest.raises(ConfigurationError):
            OpenSetNCM(slack=0.0)


class TestMajorityVoteSmoother:
    def test_suppresses_isolated_flicker(self):
        smoother = MajorityVoteSmoother(window=5)
        stream = ["walk"] * 4 + ["run"] + ["walk"] * 4
        smoothed = smoother.apply(stream)
        assert all(label == "walk" for label in smoothed)

    def test_follows_sustained_change(self):
        smoother = MajorityVoteSmoother(window=3)
        smoothed = smoother.apply(["walk"] * 5 + ["run"] * 5)
        assert smoothed[-1] == "run"
        assert "run" in smoothed

    def test_window_one_is_identity(self):
        smoother = MajorityVoteSmoother(window=1)
        stream = ["a", "b", "a", "c"]
        assert smoother.apply(stream) == stream

    def test_tie_resolves_to_most_recent(self):
        smoother = MajorityVoteSmoother(window=4)
        smoother.update("a")
        smoother.update("a")
        smoother.update("b")
        assert smoother.update("b") == "b"

    def test_apply_resets_state(self):
        smoother = MajorityVoteSmoother(window=3)
        smoother.apply(["x"] * 3)
        assert smoother.apply(["y"]) == ["y"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MajorityVoteSmoother(window=0)


class TestHysteresisSmoother:
    def test_first_label_displayed_immediately(self):
        smoother = HysteresisSmoother(switch_after=3)
        assert smoother.update("walk") == "walk"

    def test_requires_sustained_agreement_to_switch(self):
        smoother = HysteresisSmoother(switch_after=3)
        smoother.update("walk")
        assert smoother.update("run") == "walk"
        assert smoother.update("run") == "walk"
        assert smoother.update("run") == "run"

    def test_flicker_resets_candidate(self):
        smoother = HysteresisSmoother(switch_after=2)
        smoother.update("walk")
        smoother.update("run")
        smoother.update("walk")  # interrupts the run streak
        assert smoother.update("run") == "walk"
        assert smoother.update("run") == "run"

    def test_switch_after_one_follows_input(self):
        smoother = HysteresisSmoother(switch_after=1)
        assert smoother.apply(["a", "b", "c"]) == ["a", "b", "c"]

    def test_current_property(self):
        smoother = HysteresisSmoother()
        assert smoother.current is None
        smoother.update("still")
        assert smoother.current == "still"

    def test_apply_resets(self):
        smoother = HysteresisSmoother(switch_after=2)
        smoother.apply(["a"] * 3)
        assert smoother.apply(["b"])[0] == "b"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HysteresisSmoother(switch_after=0)

    def test_stabilizes_noisy_stream(self, rng):
        """A 10%-noise stream must display the true activity >95% of the time."""
        truth = ["walk"] * 50 + ["run"] * 50
        noisy = [
            label if rng.random() > 0.1 else "still" for label in truth
        ]
        smoothed = HysteresisSmoother(switch_after=3).apply(noisy)
        agreement = np.mean([s == t for s, t in zip(smoothed, truth)])
        raw_agreement = np.mean([n == t for n, t in zip(noisy, truth)])
        assert agreement > raw_agreement
        assert agreement > 0.9
