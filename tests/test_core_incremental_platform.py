"""Unit tests for the incremental learner and platform orchestration."""

import numpy as np
import pytest

from repro.core import (
    IncrementalConfig,
    IncrementalLearner,
    MagnetoPlatform,
    CloudConfig,
    NetworkLink,
)
from repro.datasets import activity_windows
from repro.exceptions import DataShapeError
from repro.nn import TrainConfig


@pytest.fixture
def learner():
    return IncrementalLearner(
        IncrementalConfig(
            train=TrainConfig(epochs=4, batch_pairs=24, lr=3e-4,
                              distill_weight=2.0)
        ),
        rng=5,
    )


@pytest.fixture
def embedder_and_support(scenario):
    return (
        scenario.package.embedder.clone(),
        scenario.package.support_set.clone(),
    )


class TestIncrementalLearner:
    def test_learn_new_class_registers_and_trains(
        self, learner, embedder_and_support, scenario, edge
    ):
        embedder, support = embedder_and_support
        windows = activity_windows(scenario.edge_user, "gesture_hi", 15, rng=2)
        feats = scenario.package.pipeline.process_windows(windows)
        result = learner.learn_new_class(embedder, support, "gesture_hi", feats)
        assert result.operation == "learn"
        assert result.n_new_samples == 15
        assert "gesture_hi" in support.class_names
        assert result.history.n_epochs == 4

    def test_learn_single_sample_rejected(
        self, learner, embedder_and_support, rng
    ):
        embedder, support = embedder_and_support
        with pytest.raises(DataShapeError):
            learner.learn_new_class(
                embedder, support, "x", rng.normal(size=(1, 80))
            )

    def test_calibrate_replaces_exemplars(
        self, learner, embedder_and_support, scenario
    ):
        embedder, support = embedder_and_support
        windows = activity_windows(scenario.edge_user, "walk", 10, rng=3)
        feats = scenario.package.pipeline.process_windows(windows)
        result = learner.calibrate_class(embedder, support, "walk", feats)
        assert result.operation == "calibrate"
        assert support.counts()["walk"] == 10

    def test_distillation_limits_drift(self, scenario):
        """With distillation the updated embedder stays closer to the
        original than without (the E7 mechanism, unit-scale)."""
        X, _ = scenario.package.support_set.clone().training_set()
        original = scenario.package.embedder
        z_before = original.embed(X)

        def drift(distill_weight, use):
            learner = IncrementalLearner(
                IncrementalConfig(
                    train=TrainConfig(epochs=6, batch_pairs=24, lr=1e-3,
                                      distill_weight=distill_weight),
                    use_distillation=use,
                ),
                rng=4,
            )
            emb = original.clone()
            support = scenario.package.support_set.clone()
            windows = activity_windows(scenario.edge_user, "jump", 12, rng=5)
            feats = scenario.package.pipeline.process_windows(windows)
            learner.learn_new_class(emb, support, "jump", feats)
            return float(np.abs(emb.embed(X) - z_before).mean())

        assert drift(5.0, True) < drift(0.0, False)

    def test_use_distillation_false_disables_teacher(
        self, embedder_and_support, scenario
    ):
        embedder, support = embedder_and_support
        learner = IncrementalLearner(
            IncrementalConfig(
                train=TrainConfig(epochs=2, batch_pairs=16, distill_weight=2.0),
                use_distillation=False,
            ),
            rng=1,
        )
        windows = activity_windows(scenario.edge_user, "jump", 8, rng=6)
        feats = scenario.package.pipeline.process_windows(windows)
        result = learner.learn_new_class(embedder, support, "jump", feats)
        assert all(v == 0.0 for v in result.history.distillation)


class TestMagnetoPlatform:
    def test_initialize_end_to_end(self):
        platform = MagnetoPlatform(
            cloud_config=CloudConfig(
                backbone_dims=(32,),
                embedding_dim=8,
                train=TrainConfig(epochs=3, batch_pairs=16),
                support_capacity=10,
            ),
            link=NetworkLink(latency_ms=25.0, bandwidth_mbps=50.0, rng=0),
            rng=9,
        )
        edge, report = platform.initialize(
            n_users=2, windows_per_user_per_activity=6
        )
        assert edge.is_ready
        assert report.package_bytes > 0
        assert report.download_ms >= 25.0
        assert report.pretrain.train_accuracy > 0.5

    def test_platform_accepts_existing_dataset(self, tiny_campaign):
        platform = MagnetoPlatform(
            cloud_config=CloudConfig(
                backbone_dims=(32,),
                embedding_dim=8,
                train=TrainConfig(epochs=3, batch_pairs=16),
                support_capacity=10,
            ),
            rng=9,
        )
        edge, report = platform.initialize(tiny_campaign)
        assert report.pretrain.n_train_windows == tiny_campaign.n_windows
