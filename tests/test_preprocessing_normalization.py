"""Unit tests for feature normalizers."""

import numpy as np
import pytest

from repro.exceptions import DataShapeError, NotFittedError, SerializationError
from repro.preprocessing import (
    MinMaxNormalizer,
    ZScoreNormalizer,
    normalizer_from_dict,
)


class TestZScore:
    def test_standardizes(self, rng):
        data = rng.normal(5.0, 3.0, size=(500, 4))
        out = ZScoreNormalizer().fit_transform(data)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_maps_to_zero(self, rng):
        data = rng.normal(size=(50, 3))
        data[:, 1] = 7.0
        out = ZScoreNormalizer().fit_transform(data)
        assert np.allclose(out[:, 1], 0.0)

    def test_transform_uses_fitted_stats(self, rng):
        train = rng.normal(0.0, 1.0, size=(100, 2))
        shifted = train + 10.0
        norm = ZScoreNormalizer().fit(train)
        out = norm.transform(shifted)
        assert out.mean() == pytest.approx(10.0, abs=0.5)

    def test_inverse_roundtrip(self, rng):
        data = rng.normal(3.0, 2.0, size=(60, 5))
        norm = ZScoreNormalizer().fit(data)
        assert np.allclose(norm.inverse_transform(norm.transform(data)), data)

    def test_unfitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            ZScoreNormalizer().transform(rng.normal(size=(3, 2)))

    def test_fit_empty_rejected(self):
        with pytest.raises(DataShapeError):
            ZScoreNormalizer().fit(np.zeros((0, 4)))

    def test_wrong_width_rejected(self, rng):
        norm = ZScoreNormalizer().fit(rng.normal(size=(10, 4)))
        with pytest.raises(DataShapeError):
            norm.transform(rng.normal(size=(5, 3)))

    def test_serialization_roundtrip(self, rng):
        data = rng.normal(size=(30, 4))
        norm = ZScoreNormalizer().fit(data)
        rebuilt = normalizer_from_dict(norm.to_dict())
        assert np.allclose(rebuilt.transform(data), norm.transform(data))

    def test_serialize_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            ZScoreNormalizer().to_dict()


class TestMinMax:
    def test_maps_to_unit_interval(self, rng):
        data = rng.uniform(-5, 5, size=(200, 3))
        out = MinMaxNormalizer().fit_transform(data)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_feature_maps_to_zero(self, rng):
        data = rng.normal(size=(50, 2))
        data[:, 0] = -3.0
        out = MinMaxNormalizer().fit_transform(data)
        assert np.allclose(out[:, 0], 0.0)

    def test_out_of_range_not_clipped_by_default(self, rng):
        train = rng.uniform(0, 1, size=(100, 1))
        norm = MinMaxNormalizer().fit(train)
        out = norm.transform(np.array([[5.0]]))
        assert out[0, 0] > 1.0

    def test_clip_option(self, rng):
        train = rng.uniform(0, 1, size=(100, 1))
        norm = MinMaxNormalizer(clip=True).fit(train)
        assert norm.transform(np.array([[5.0]]))[0, 0] == 1.0
        assert norm.transform(np.array([[-5.0]]))[0, 0] == 0.0

    def test_inverse_roundtrip(self, rng):
        data = rng.uniform(-2, 3, size=(40, 4))
        norm = MinMaxNormalizer().fit(data)
        assert np.allclose(norm.inverse_transform(norm.transform(data)), data)

    def test_serialization_roundtrip_preserves_clip(self, rng):
        norm = MinMaxNormalizer(clip=True).fit(rng.normal(size=(20, 2)))
        rebuilt = normalizer_from_dict(norm.to_dict())
        assert rebuilt.clip is True

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxNormalizer().transform(np.zeros((2, 2)))


class TestNormalizerFromDict:
    def test_unknown_kind(self):
        with pytest.raises(SerializationError):
            normalizer_from_dict({"kind": "rank"})

    def test_malformed(self):
        with pytest.raises(SerializationError):
            normalizer_from_dict({})
