"""Unit tests for the activity journal (result visualization)."""

import numpy as np
import pytest

from repro.edge_runtime import MagnetoApp
from repro.edge_runtime.journal import ActivityJournal, ActivitySegment
from repro.exceptions import ConfigurationError


class TestActivitySegment:
    def test_duration(self):
        seg = ActivitySegment("walk", 10.0, 25.0)
        assert seg.duration_s == 15.0

    def test_backwards_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivitySegment("walk", 10.0, 5.0)


class TestJournalSegmentation:
    def test_single_activity_single_segment(self):
        journal = ActivityJournal(switch_after=1)
        for _ in range(10):
            journal.add_prediction("walk")
        segments = journal.segments()
        assert len(segments) == 1
        assert segments[0].activity == "walk"
        assert segments[0].duration_s == pytest.approx(10.0)

    def test_transition_creates_two_segments(self):
        journal = ActivityJournal(switch_after=1)
        for _ in range(5):
            journal.add_prediction("walk")
        for _ in range(5):
            journal.add_prediction("run")
        segments = journal.segments()
        assert [s.activity for s in segments] == ["walk", "run"]
        assert segments[0].duration_s == pytest.approx(5.0)
        assert segments[1].duration_s == pytest.approx(5.0)

    def test_flicker_absorbed_by_hysteresis(self):
        journal = ActivityJournal(switch_after=3)
        stream = ["walk"] * 5 + ["run"] + ["walk"] * 5
        for label in stream:
            journal.add_prediction(label)
        assert [s.activity for s in journal.segments()] == ["walk"]
        assert journal.total_duration_s == pytest.approx(11.0) or (
            journal.total_duration_s() == pytest.approx(11.0)
        )

    def test_sustained_change_switches_with_debounce_lag(self):
        journal = ActivityJournal(switch_after=2)
        for label in ["walk"] * 4 + ["run"] * 4:
            journal.add_prediction(label)
        names = [s.activity for s in journal.segments()]
        assert names == ["walk", "run"]
        # The switch fires after the debounce, so walk absorbs one run window.
        assert journal.segments()[0].duration_s == pytest.approx(5.0)

    def test_explicit_timestamps(self):
        journal = ActivityJournal(window_s=2.0, switch_after=1)
        journal.add_prediction("walk", t_start=100.0)
        journal.add_prediction("walk", t_start=102.0)
        seg = journal.segments()[0]
        assert seg.t_start == 100.0
        assert seg.t_end == 104.0

    def test_empty_journal(self):
        journal = ActivityJournal()
        assert journal.segments() == []
        assert journal.totals() == {}
        assert journal.dominant_activity() is None
        assert journal.total_duration_s() == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ActivityJournal(window_s=0.0)


class TestJournalSummaries:
    @pytest.fixture
    def journal(self):
        journal = ActivityJournal(switch_after=1)
        for label in ["walk"] * 6 + ["run"] * 3 + ["walk"] * 2:
            journal.add_prediction(label)
        return journal

    def test_totals(self, journal):
        totals = journal.totals()
        assert totals["walk"] == pytest.approx(8.0)
        assert totals["run"] == pytest.approx(3.0)

    def test_dominant(self, journal):
        assert journal.dominant_activity() == "walk"

    def test_timeline_lines(self, journal):
        timeline = journal.render_timeline()
        assert len(timeline.splitlines()) == 3
        assert "walk" in timeline and "run" in timeline

    def test_summary_ordered_longest_first(self, journal):
        lines = journal.render_summary().splitlines()
        assert lines[0].startswith("walk")
        assert lines[1].startswith("run")

    def test_reset(self, journal):
        journal.reset()
        assert journal.segments() == []


class TestJournalWithApp:
    def test_journal_from_live_session(self, edge, scenario):
        app = MagnetoApp(edge, scenario.sensor_device)
        journal = ActivityJournal(switch_after=2)
        for activity, seconds in (("still", 5.0), ("walk", 5.0)):
            journal.add_frames(app.infer_live(activity, seconds))
        totals = journal.totals()
        assert journal.total_duration_s() == pytest.approx(10.0)
        # The two performed activities dominate the journal.
        top_two = sorted(totals.values(), reverse=True)[:2]
        assert sum(top_two) >= 8.0
