"""Tests for the reprolint framework: pragmas, suppression, reports."""

import json
import pathlib

from repro.analysis import (
    ExceptionTaxonomyChecker,
    LintReport,
    Violation,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from repro.analysis.core import Pragma, SourceFile, _parse_pragmas

SWALLOW = """\
def swallow(fn):
    try:
        return fn()
    except Exception:{pragma}
        return None
"""


class TestPragmaParsing:
    def test_trailing_pragma_is_line_level(self):
        lines = [
            "except Exception:  "
            "# reprolint: disable=broad-except — isolation"
        ]
        (pragma,) = _parse_pragmas(lines)
        assert pragma.rules == ("broad-except",)
        assert pragma.justification == "isolation"
        assert not pragma.file_level
        assert pragma.line == 1

    def test_standalone_pragma_is_file_level(self):
        lines = ["# reprolint: disable=entry-point — baseline on purpose"]
        (pragma,) = _parse_pragmas(lines)
        assert pragma.file_level

    def test_multiple_rules_in_one_pragma(self):
        lines = ["# reprolint: disable=array-alias, view-return — frozen"]
        (pragma,) = _parse_pragmas(lines)
        assert pragma.rules == ("array-alias", "view-return")

    def test_justification_separators(self):
        for sep in ("—", "--", ":"):
            lines = [f"# reprolint: disable=raw-raise {sep} because reasons"]
            (pragma,) = _parse_pragmas(lines)
            assert pragma.justification == "because reasons", sep

    def test_missing_justification_is_empty(self):
        lines = ["# reprolint: disable=broad-except"]
        (pragma,) = _parse_pragmas(lines)
        assert pragma.justification == ""

    def test_non_pragma_comments_ignored(self):
        assert _parse_pragmas(["# plain comment", "x = 1  # noqa"]) == []

    def test_covers_matches_rule_and_line(self):
        pragma = Pragma(
            line=3, rules=("raw-raise",), justification="x", file_level=False
        )
        hit = Violation("raw-raise", "a.py", 3, "m")
        assert pragma.covers(hit)
        assert not pragma.covers(Violation("raw-raise", "a.py", 4, "m"))
        assert not pragma.covers(Violation("broad-except", "a.py", 3, "m"))

    def test_file_level_covers_any_line(self):
        pragma = Pragma(
            line=1, rules=("raw-raise",), justification="x", file_level=True
        )
        assert pragma.covers(Violation("raw-raise", "a.py", 99, "m"))


class TestLintSource:
    def test_violation_reported(self):
        violations = lint_source(
            SWALLOW.format(pragma=""), [ExceptionTaxonomyChecker()]
        )
        assert [v.rule for v in violations] == ["broad-except"]
        assert violations[0].line == 4

    def test_line_pragma_suppresses(self):
        source = SWALLOW.format(
            pragma="  # reprolint: disable=broad-except — swallow fixture"
        )
        assert lint_source(source, [ExceptionTaxonomyChecker()]) == []

    def test_file_pragma_suppresses(self):
        source = (
            "# reprolint: disable=broad-except — whole-file fixture\n"
            + SWALLOW.format(pragma="")
        )
        assert lint_source(source, [ExceptionTaxonomyChecker()]) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = SWALLOW.format(
            pragma="  # reprolint: disable=raw-raise — wrong rule"
        )
        violations = lint_source(source, [ExceptionTaxonomyChecker()])
        assert [v.rule for v in violations] == ["broad-except"]

    def test_strict_flags_unjustified_pragma(self):
        source = SWALLOW.format(pragma="  # reprolint: disable=broad-except")
        violations = lint_source(
            source, [ExceptionTaxonomyChecker()], strict=True
        )
        assert [v.rule for v in violations] == ["pragma-justification"]
        assert violations[0].severity == "error"

    def test_strict_accepts_justified_pragma(self):
        source = SWALLOW.format(
            pragma="  # reprolint: disable=broad-except — justified here"
        )
        assert lint_source(
            source, [ExceptionTaxonomyChecker()], strict=True
        ) == []

    def test_syntax_error_becomes_parse_error_violation(self):
        violations = lint_source("def broken(:\n", [ExceptionTaxonomyChecker()])
        assert [v.rule for v in violations] == ["parse-error"]


class TestReport:
    def test_ok_tracks_errors_not_warnings(self):
        report = LintReport()
        assert report.ok
        report.violations.append(
            Violation("bench-ungated", "b.py", 1, "m", severity="warning")
        )
        assert report.ok and report.warnings
        report.violations.append(Violation("raw-raise", "a.py", 1, "m"))
        assert not report.ok and len(report.errors) == 1

    def test_format_text_summary_line(self):
        report = LintReport(files_checked=2)
        report.violations.append(Violation("raw-raise", "a.py", 3, "bad"))
        text = format_text(report)
        assert "a.py:3: error: [raw-raise] bad" in text
        assert "2 file(s) checked: 1 error(s), 0 warning(s)" in text

    def test_format_text_verbose_lists_suppressions(self):
        report = LintReport(files_checked=1)
        report.suppressed.append((
            Violation("broad-except", "a.py", 3, "m"),
            Pragma(3, ("broad-except",), "isolation", False),
        ))
        text = format_text(report, verbose=True)
        assert "suppressed:" in text and "isolation" in text

    def test_format_json_round_trips(self):
        report = LintReport(files_checked=1)
        report.violations.append(Violation("raw-raise", "a.py", 3, "bad"))
        payload = json.loads(format_json(report))
        assert payload["errors"] == 1
        assert payload["violations"][0]["rule"] == "raw-raise"


class TestLintPaths:
    def test_walks_tree_and_reports_relative_paths(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text('raise ValueError("x")\n')
        (pkg / "good.py").write_text("x = 1\n")
        report = lint_paths(
            [tmp_path], [ExceptionTaxonomyChecker()], root=tmp_path
        )
        assert report.files_checked == 2
        assert [v.path for v in report.errors] == ["pkg/bad.py"]

    def test_duplicate_paths_lint_once(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text('raise ValueError("x")\n')
        report = lint_paths(
            [target, target], [ExceptionTaxonomyChecker()], root=tmp_path
        )
        assert report.files_checked == 1
        assert len(report.errors) == 1

    def test_suppressed_moves_out_of_violations(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "try:\n    pass\n"
            "except Exception:"
            "  # reprolint: disable=broad-except — fixture\n"
            "    pass\n"
        )
        report = lint_paths(
            [target], [ExceptionTaxonomyChecker()], root=tmp_path, strict=True
        )
        assert report.ok
        assert len(report.suppressed) == 1
        violation, pragma = report.suppressed[0]
        assert violation.rule == "broad-except"
        assert pragma.justification == "fixture"

    def test_source_file_rel_outside_root(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        src = SourceFile.read(target, pathlib.Path("/nonexistent-root"))
        assert src.rel == target.as_posix()
