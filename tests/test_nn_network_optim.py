"""Unit tests for Sequential networks, the MLP builder, optimizers and schedules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SerializationError
from repro.nn import (
    Adam,
    BatchNorm1d,
    ConstantLR,
    CosineAnnealingLR,
    Linear,
    PAPER_BACKBONE_DIMS,
    PAPER_EMBEDDING_DIM,
    ReLU,
    SGD,
    Sequential,
    StepLR,
    build_mlp,
    clip_grad_norm,
    mse_loss,
)


class TestSequential:
    def test_forward_composes(self, rng):
        net = Sequential([Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng)])
        out = net.forward(rng.normal(size=(5, 3)))
        assert out.shape == (5, 2)

    def test_backward_gradient_check(self, rng):
        net = Sequential([Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng)])
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_at(flat_w):
            net.layers[0].weight.data = flat_w.reshape(3, 5)
            out = net.forward(x, training=True)
            return mse_loss(out, target)[0]

        w0 = net.layers[0].weight.data.copy()
        out = net.forward(x, training=True)
        _, grad = mse_loss(out, target)
        net.zero_grad()
        net.backward(grad)
        analytic = net.layers[0].weight.grad.copy()

        numeric = np.zeros(w0.size)
        eps = 1e-6
        flat = w0.flatten()
        for i in range(flat.size):
            up, down = flat.copy(), flat.copy()
            up[i] += eps
            down[i] -= eps
            numeric[i] = (loss_at(up) - loss_at(down)) / (2 * eps)
        net.layers[0].weight.data = w0
        assert np.allclose(analytic.flatten(), numeric, atol=1e-5)

    def test_parameters_collects_all(self, rng):
        net = Sequential([Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng)])
        assert len(net.parameters()) == 4  # two weights + two biases

    def test_n_parameters(self, rng):
        net = Sequential([Linear(2, 3, rng=rng)])
        assert net.n_parameters() == 2 * 3 + 3

    def test_size_bytes_float32(self, rng):
        net = Sequential([Linear(2, 3, rng=rng)])
        assert net.size_bytes() == net.n_parameters() * 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([])

    def test_state_dict_roundtrip(self, rng):
        net = Sequential([Linear(3, 4, rng=rng), BatchNorm1d(4), ReLU(),
                          Linear(4, 2, rng=rng)])
        net.forward(rng.normal(size=(8, 3)), training=True)  # move BN stats
        state = net.state_dict()
        twin = Sequential.from_config(net.to_config())
        twin.load_state_dict(state)
        x = rng.normal(size=(5, 3))
        assert np.allclose(net.forward(x), twin.forward(x))

    def test_load_missing_key_rejected(self, rng):
        net = Sequential([Linear(2, 2, rng=rng)])
        with pytest.raises(SerializationError, match="missing"):
            net.load_state_dict({})

    def test_load_shape_mismatch_rejected(self, rng):
        net = Sequential([Linear(2, 2, rng=rng)])
        state = net.state_dict()
        state["0.weight"] = np.zeros((3, 3))
        with pytest.raises(SerializationError, match="shape"):
            net.load_state_dict(state)

    def test_clone_is_independent(self, rng):
        net = Sequential([Linear(2, 2, rng=rng)])
        twin = net.clone()
        twin.layers[0].weight.data += 1.0
        assert not np.allclose(net.layers[0].weight.data,
                               twin.layers[0].weight.data)

    def test_clone_preserves_outputs(self, rng):
        net = Sequential([Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng)])
        x = rng.normal(size=(4, 3))
        assert np.allclose(net.forward(x), net.clone().forward(x))


class TestBuildMlp:
    def test_paper_dimensions(self):
        # "[1024 x 512 x 128 x 64 x 128]" on an 80-dim input.
        net = build_mlp(input_dim=80, rng=0)
        dims = [(l.in_features, l.out_features)
                for l in net.layers if isinstance(l, Linear)]
        assert dims == [(80, 1024), (1024, 512), (512, 128), (128, 64),
                        (64, 128)]
        assert PAPER_BACKBONE_DIMS == (1024, 512, 128, 64)
        assert PAPER_EMBEDDING_DIM == 128

    def test_paper_model_fits_edge_budget(self):
        # The full backbone at float32 must sit well under the paper's 5 MB
        # total-footprint claim.
        net = build_mlp(input_dim=80, rng=0)
        assert net.size_bytes() < 4 * 1024 * 1024

    def test_custom_dims(self):
        net = build_mlp(4, hidden_dims=(8,), output_dim=2, rng=0)
        out = net.forward(np.zeros((1, 4)))
        assert out.shape == (1, 2)

    def test_final_layer_is_linear(self):
        net = build_mlp(4, hidden_dims=(8,), output_dim=2, rng=0)
        assert isinstance(net.layers[-1], Linear)

    def test_dropout_and_batchnorm_flags(self):
        net = build_mlp(4, hidden_dims=(8,), output_dim=2, dropout=0.2,
                        batchnorm=True, rng=0)
        kinds = [type(l).__name__ for l in net.layers]
        assert "Dropout" in kinds
        assert "BatchNorm1d" in kinds

    def test_tanh_activation(self):
        net = build_mlp(4, hidden_dims=(8,), output_dim=2, activation="tanh",
                        rng=0)
        kinds = [type(l).__name__ for l in net.layers]
        assert "Tanh" in kinds

    def test_invalid_activation_rejected(self):
        with pytest.raises(ConfigurationError):
            build_mlp(4, activation="gelu")

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            build_mlp(0)
        with pytest.raises(ConfigurationError):
            build_mlp(4, output_dim=0)


def quadratic_problem(rng, n=40, d=5):
    """A least-squares problem y = X w* solvable by any sane optimizer."""
    X = rng.normal(size=(n, d))
    w_star = rng.normal(size=(d, 1))
    y = X @ w_star
    return X, y


@pytest.mark.parametrize("opt_factory", [
    lambda p: SGD(p, lr=0.05),
    lambda p: SGD(p, lr=0.05, momentum=0.9),
    lambda p: Adam(p, lr=0.05),
])
def test_optimizers_solve_least_squares(opt_factory, rng):
    X, y = quadratic_problem(rng)
    net = Sequential([Linear(5, 1, rng=rng)])
    optimizer = opt_factory(net.parameters())
    for _ in range(300):
        out = net.forward(X, training=True)
        loss, grad = mse_loss(out, y)
        net.zero_grad()
        net.backward(grad)
        optimizer.step()
    final = mse_loss(net.forward(X), y)[0]
    assert final < 1e-3


class TestOptimizerValidation:
    def test_bad_lr_rejected(self, rng):
        params = Sequential([Linear(2, 2, rng=rng)]).parameters()
        with pytest.raises(ConfigurationError):
            SGD(params, lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_bad_momentum_rejected(self, rng):
        params = Sequential([Linear(2, 2, rng=rng)]).parameters()
        with pytest.raises(ConfigurationError):
            SGD(params, lr=0.1, momentum=1.0)

    def test_bad_betas_rejected(self, rng):
        params = Sequential([Linear(2, 2, rng=rng)]).parameters()
        with pytest.raises(ConfigurationError):
            Adam(params, betas=(1.0, 0.999))

    def test_weight_decay_shrinks_weights(self, rng):
        net = Sequential([Linear(3, 3, rng=rng)])
        optimizer = SGD(net.parameters(), lr=0.1, weight_decay=0.5)
        before = float(np.abs(net.layers[0].weight.data).sum())
        for _ in range(20):
            net.zero_grad()  # gradient stays zero; only decay acts
            optimizer.step()
        after = float(np.abs(net.layers[0].weight.data).sum())
        assert after < before

    def test_set_lr(self, rng):
        opt = SGD(Sequential([Linear(2, 2, rng=rng)]).parameters(), lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ConfigurationError):
            opt.set_lr(-1.0)


class TestClipGradNorm:
    def test_large_gradients_scaled(self, rng):
        net = Sequential([Linear(3, 3, rng=rng)])
        for p in net.parameters():
            p.grad[...] = 100.0
        pre = clip_grad_norm(net.parameters(), max_norm=1.0)
        assert pre > 1.0
        total = sum(float((p.grad ** 2).sum()) for p in net.parameters())
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_small_gradients_untouched(self, rng):
        net = Sequential([Linear(2, 2, rng=rng)])
        for p in net.parameters():
            p.grad[...] = 1e-4
        before = [p.grad.copy() for p in net.parameters()]
        clip_grad_norm(net.parameters(), max_norm=10.0)
        for b, p in zip(before, net.parameters()):
            assert np.allclose(b, p.grad)

    def test_bad_max_norm_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            clip_grad_norm(Sequential([Linear(2, 2, rng=rng)]).parameters(), 0.0)


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1).at_epoch(100) == 0.1

    def test_step_decay(self):
        sched = StepLR(1.0, step_size=10, gamma=0.5)
        assert sched.at_epoch(0) == 1.0
        assert sched.at_epoch(10) == 0.5
        assert sched.at_epoch(25) == 0.25

    def test_cosine_endpoints(self):
        sched = CosineAnnealingLR(1.0, total_epochs=100, min_lr=0.1)
        assert sched.at_epoch(0) == pytest.approx(1.0)
        assert sched.at_epoch(100) == pytest.approx(0.1)
        assert 0.1 < sched.at_epoch(50) < 1.0

    def test_cosine_monotone_decrease(self):
        sched = CosineAnnealingLR(1.0, total_epochs=50)
        values = [sched.at_epoch(e) for e in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StepLR(1.0, step_size=0)
        with pytest.raises(ConfigurationError):
            CosineAnnealingLR(1.0, total_epochs=10, min_lr=2.0)
