"""Unit tests for drift monitoring and federated aggregation."""

import numpy as np
import pytest

from repro.core import DriftMonitor, NetworkLink
from repro.exceptions import (
    ConfigurationError,
    DataShapeError,
    NotFittedError,
)
from repro.federated import (
    FederatedClient,
    FederationServer,
    apply_delta,
    clip_delta_norm,
    federated_average,
    state_delta,
    state_nbytes,
)
from repro.nn import TrainConfig, build_mlp


class TestDriftMonitor:
    def make_monitor(self, **kwargs):
        defaults = dict(window=20, threshold=0.5, patience=3, min_samples=5)
        defaults.update(kwargs)
        return DriftMonitor(**defaults).set_standard_reference(8)

    def test_no_score_until_min_samples(self, rng):
        monitor = self.make_monitor()
        for i in range(4):
            assert monitor.observe(rng.normal(size=8)) is None
        assert monitor.observe(rng.normal(size=8)) is not None

    def test_in_distribution_data_not_flagged(self, rng):
        monitor = self.make_monitor()
        for _ in range(40):
            monitor.observe(rng.normal(size=8))
        assert not monitor.is_drifting()
        assert not monitor.should_recalibrate()

    def test_shifted_data_flagged(self, rng):
        monitor = self.make_monitor()
        for _ in range(40):
            monitor.observe(rng.normal(size=8) + 2.0)
        assert monitor.is_drifting()
        assert monitor.should_recalibrate()

    def test_patience_debounces(self, rng):
        monitor = self.make_monitor(patience=5, window=5, min_samples=5)
        for _ in range(5):
            monitor.observe(rng.normal(size=8))
        # Two drifting observations: flagged but not yet actionable.
        monitor.observe(np.full(8, 5.0))
        monitor.observe(np.full(8, 5.0))
        assert not monitor.should_recalibrate()

    def test_score_grows_with_shift(self, rng):
        scores = []
        for shift in (0.0, 1.0, 3.0):
            monitor = self.make_monitor()
            for _ in range(30):
                monitor.observe(rng.normal(size=8) + shift)
            scores.append(monitor.score())
        assert scores[0] < scores[1] < scores[2]

    def test_reset_after_recalibration(self, rng):
        monitor = self.make_monitor()
        for _ in range(30):
            monitor.observe(np.full(8, 4.0))
        assert monitor.should_recalibrate()
        monitor.reset_after_recalibration()
        assert monitor.score() is None
        assert not monitor.should_recalibrate()

    def test_fit_reference_from_features(self, rng):
        data = rng.normal(5.0, 2.0, size=(100, 6))
        monitor = DriftMonitor(window=20, min_samples=5).fit_reference(data)
        for _ in range(20):
            monitor.observe(rng.normal(5.0, 2.0, size=6))
        assert not monitor.is_drifting()

    def test_status_keys(self, rng):
        monitor = self.make_monitor()
        status = monitor.status()
        assert {"samples_in_window", "score", "threshold", "flag_streak"} == set(
            status
        )

    def test_unreferenced_observe_rejected(self, rng):
        with pytest.raises(NotFittedError):
            DriftMonitor().observe(rng.normal(size=4))

    def test_wrong_width_rejected(self, rng):
        monitor = self.make_monitor()
        with pytest.raises(DataShapeError):
            monitor.observe(rng.normal(size=9))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftMonitor(window=0)
        with pytest.raises(ConfigurationError):
            DriftMonitor(threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftMonitor(window=5, min_samples=6)
        with pytest.raises(ConfigurationError):
            DriftMonitor().set_reference(np.zeros(3), np.zeros(3))

    def test_drift_detected_on_real_user_change(self, scenario):
        """An atypical user's features must trip a monitor referenced on
        the z-scored campaign distribution."""
        from repro.datasets import activity_windows
        from repro.sensors import atypical_user

        edge = scenario.fresh_edge(rng=30)
        monitor = DriftMonitor(
            window=20, threshold=0.5, patience=3, min_samples=10
        ).set_standard_reference(edge.pipeline.n_features)

        outlier = atypical_user(7777, rng=8)
        windows = activity_windows(outlier, "walk", 25, rng=9)
        for feats in edge.pipeline.process_windows(windows):
            monitor.observe(feats)
        assert monitor.is_drifting()


def tiny_states(rng, keys=("0.weight", "0.bias")):
    def one():
        return {k: rng.normal(size=(3, 2) if "weight" in k else (2,)) for k in keys}
    return one(), one()


class TestFedAvgMath:
    def test_uniform_average(self, rng):
        a, b = tiny_states(rng)
        avg = federated_average([a, b])
        for key in a:
            assert np.allclose(avg[key], (a[key] + b[key]) / 2)

    def test_weighted_average(self, rng):
        a, b = tiny_states(rng)
        avg = federated_average([a, b], weights=[3, 1])
        for key in a:
            assert np.allclose(avg[key], 0.75 * a[key] + 0.25 * b[key])

    def test_single_state_identity(self, rng):
        a, _ = tiny_states(rng)
        avg = federated_average([a])
        for key in a:
            assert np.allclose(avg[key], a[key])

    def test_incompatible_keys_rejected(self, rng):
        a, _ = tiny_states(rng)
        b = {"other": np.zeros(2)}
        with pytest.raises(DataShapeError):
            federated_average([a, b])

    def test_incompatible_shapes_rejected(self, rng):
        a, b = tiny_states(rng)
        b["0.weight"] = np.zeros((4, 4))
        with pytest.raises(DataShapeError):
            federated_average([a, b])

    def test_bad_weights_rejected(self, rng):
        a, b = tiny_states(rng)
        with pytest.raises(ConfigurationError):
            federated_average([a, b], weights=[1.0])
        with pytest.raises(ConfigurationError):
            federated_average([a, b], weights=[1.0, 0.0])

    def test_delta_and_apply_roundtrip(self, rng):
        a, b = tiny_states(rng)
        delta = state_delta(b, a)
        rebuilt = apply_delta(a, delta)
        for key in b:
            assert np.allclose(rebuilt[key], b[key])

    def test_clip_delta(self, rng):
        a, b = tiny_states(rng)
        delta = state_delta(b, a)
        clipped = clip_delta_norm(delta, max_norm=0.1)
        total = sum(float((v * v).sum()) for v in clipped.values())
        assert np.sqrt(total) <= 0.1 + 1e-9

    def test_clip_below_norm_is_copy(self, rng):
        a, b = tiny_states(rng)
        delta = state_delta(b, a)
        same = clip_delta_norm(delta, max_norm=1e9)
        for key in delta:
            assert np.allclose(same[key], delta[key])
            assert same[key] is not delta[key]

    def test_state_nbytes(self, rng):
        a, _ = tiny_states(rng)
        assert state_nbytes(a) == (6 + 2) * 4  # float32


class TestFederatedRound:
    @pytest.fixture
    def clients(self, scenario):
        train = TrainConfig(epochs=2, batch_pairs=24, lr=3e-4,
                            distill_weight=2.0)
        return [
            FederatedClient(scenario.fresh_edge(rng=40 + i),
                            local_train=train, rng=50 + i)
            for i in range(3)
        ]

    def test_round_updates_global_state(self, scenario, clients):
        server = FederationServer(
            scenario.package.embedder.network.state_dict()
        )
        before = {k: v.copy() for k, v in server.global_state.items()}
        stats = server.run_round(clients)
        assert stats["round"] == 1.0
        changed = any(
            not np.allclose(before[k], server.global_state[k])
            for k in before
        )
        assert changed

    def test_no_user_data_crosses_the_link(self, scenario, clients):
        server = FederationServer(
            scenario.package.embedder.network.state_dict()
        )
        link = NetworkLink(latency_ms=20.0, bandwidth_mbps=50.0, rng=0)
        server.run_round(clients, link=link)
        for client in clients:
            guard = client.edge.guard
            assert guard.user_bytes_sent_to_cloud() == 0
            uploads = [
                rec for rec in guard.log
                if rec.direction == "edge->cloud"
            ]
            assert uploads  # the delta did go up...
            assert all(not rec.contains_user_data for rec in uploads)  # ...but carried no user data

    def test_global_model_stays_accurate_after_round(self, scenario, clients):
        server = FederationServer(
            scenario.package.embedder.network.state_dict()
        )
        server.run_round(clients)
        probe = scenario.fresh_edge(rng=60)
        probe.embedder.network.load_state_dict(server.global_state)
        probe._rebuild_classifier()
        feats = probe.pipeline.process_windows(scenario.base_test.windows)
        accuracy = float(
            np.mean(probe.infer_features(feats) == scenario.base_test.labels)
        )
        assert accuracy > 0.8

    def test_unprovisioned_client_rejected(self):
        from repro.core import EdgeDevice

        with pytest.raises(NotFittedError):
            FederatedClient(EdgeDevice())

    def test_empty_round_rejected(self, scenario):
        server = FederationServer(
            scenario.package.embedder.network.state_dict()
        )
        with pytest.raises(ConfigurationError):
            server.run_round([])

    def test_server_validation(self, scenario):
        with pytest.raises(ConfigurationError):
            FederationServer(
                scenario.package.embedder.network.state_dict(), server_lr=0.0
            )
