"""Property-based tests for the NN substrate and core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import NCMClassifier, SupportSet, herding_selection
from repro.nn import (
    contrastive_loss,
    distillation_loss,
    sample_pairs,
    softmax,
    softmax_cross_entropy,
)

unit_floats = st.floats(
    min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
)


def embedding_pairs(max_n=12, max_d=6):
    return st.tuples(st.integers(1, max_n), st.integers(1, max_d)).flatmap(
        lambda nd: st.tuples(
            arrays(np.float64, nd, elements=unit_floats),
            arrays(np.float64, nd, elements=unit_floats),
            arrays(np.bool_, (nd[0],)),
        )
    )


class TestLossProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=embedding_pairs())
    def test_contrastive_nonnegative(self, data):
        za, zb, same = data
        loss, ga, gb = contrastive_loss(za, zb, same)
        assert loss >= 0.0
        assert np.all(np.isfinite(ga))
        assert np.all(np.isfinite(gb))

    @settings(max_examples=50, deadline=None)
    @given(data=embedding_pairs())
    def test_contrastive_grads_antisymmetric(self, data):
        za, zb, same = data
        _, ga, gb = contrastive_loss(za, zb, same)
        assert np.allclose(ga, -gb)

    @settings(max_examples=50, deadline=None)
    @given(data=embedding_pairs())
    def test_contrastive_symmetric_in_pair_order(self, data):
        za, zb, same = data
        loss_ab, *_ = contrastive_loss(za, zb, same)
        loss_ba, *_ = contrastive_loss(zb, za, same)
        assert loss_ab == pytest.approx(loss_ba)

    @settings(max_examples=50, deadline=None)
    @given(data=embedding_pairs())
    def test_distillation_nonnegative_and_zero_iff_equal(self, data):
        za, zb, _ = data
        loss, _ = distillation_loss(za, zb)
        assert loss >= 0.0
        self_loss, grad = distillation_loss(za, za.copy())
        assert self_loss == 0.0
        assert np.all(grad == 0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        logits=st.tuples(st.integers(1, 8), st.integers(2, 6)).flatmap(
            lambda nd: arrays(np.float64, nd, elements=unit_floats)
        )
    )
    def test_softmax_is_distribution(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0.0)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        logits=st.tuples(st.integers(1, 8), st.integers(2, 6)).flatmap(
            lambda nd: arrays(np.float64, nd, elements=unit_floats)
        ),
        seed=st.integers(0, 1000),
    )
    def test_cross_entropy_nonnegative_grad_sums_zero(self, logits, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, logits.shape[1], size=logits.shape[0])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss >= 0.0
        # Softmax-CE gradient rows sum to zero.
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-9)


class TestPairSamplingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        class_sizes=st.lists(st.integers(1, 10), min_size=2, max_size=5),
        n_pairs=st.integers(1, 80),
        seed=st.integers(0, 10_000),
    )
    def test_pair_invariants(self, class_sizes, n_pairs, seed):
        labels = np.concatenate(
            [np.full(size, c) for c, size in enumerate(class_sizes)]
        )
        ia, ib, same = sample_pairs(labels, n_pairs, rng=seed)
        assert len(ia) == len(ib) == len(same) == n_pairs
        assert ia.min() >= 0 and ia.max() < len(labels)
        # same flag always matches the labels.
        assert np.array_equal(same, labels[ia] == labels[ib])
        # positive pairs never reuse one sample twice.
        assert np.all(ia[same] != ib[same])


class TestSupportSetProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        counts=st.lists(st.integers(1, 20), min_size=1, max_size=6),
        capacity=st.integers(1, 15),
        seed=st.integers(0, 1000),
    )
    def test_capacity_and_label_invariants(self, counts, capacity, seed):
        rng = np.random.default_rng(seed)
        store = SupportSet(capacity_per_class=capacity, rng=seed)
        for i, count in enumerate(counts):
            store.add_class(f"c{i}", rng.normal(size=(count, 5)))

        assert store.n_classes == len(counts)
        for i, count in enumerate(counts):
            assert store.counts()[f"c{i}"] == min(count, capacity)
            assert store.label_of(f"c{i}") == i

        X, y = store.training_set()
        assert X.shape[0] == store.total_samples
        assert np.array_equal(np.unique(y), np.arange(len(counts)))
        assert store.size_bytes() == store.total_samples * 5 * 4

    @settings(max_examples=30, deadline=None)
    @given(
        counts=st.lists(st.integers(1, 8), min_size=1, max_size=5),
        seed=st.integers(0, 1000),
    )
    def test_arrays_roundtrip_property(self, counts, seed):
        rng = np.random.default_rng(seed)
        store = SupportSet(capacity_per_class=10, rng=seed)
        for i, count in enumerate(counts):
            store.add_class(f"c{i}", rng.normal(size=(count, 4)))
        rebuilt = SupportSet.from_arrays(store.to_arrays())
        assert rebuilt.class_names == store.class_names
        for name in store.class_names:
            assert np.allclose(
                rebuilt.features_of(name), store.features_of(name)
            )


class TestHerdingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 30),
        d=st.integers(1, 6),
        capacity=st.integers(1, 30),
        seed=st.integers(0, 1000),
    )
    def test_herding_index_invariants(self, n, d, capacity, seed):
        emb = np.random.default_rng(seed).normal(size=(n, d))
        idx = herding_selection(emb, capacity)
        assert len(idx) == min(n, capacity)
        assert len(set(idx.tolist())) == len(idx)
        assert idx.min() >= 0 and idx.max() < n


class TestNCMProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_classes=st.integers(2, 5),
        per_class=st.integers(1, 8),
        d=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_prototypes_classified_as_their_class(
        self, n_classes, per_class, d, seed
    ):
        rng = np.random.default_rng(seed)
        # Spread class centers far apart so prototypes are unambiguous.
        emb = np.concatenate(
            [rng.normal(size=(per_class, d)) + 100.0 * c
             for c in range(n_classes)]
        )
        labels = np.repeat(np.arange(n_classes), per_class)
        names = [f"c{i}" for i in range(n_classes)]
        ncm = NCMClassifier().fit(emb, labels, names)
        pred = ncm.predict(ncm.prototypes_)
        assert np.array_equal(pred, np.arange(n_classes))

    @settings(max_examples=30, deadline=None)
    @given(
        d=st.integers(1, 6),
        shift=st.floats(-5, 5),
        seed=st.integers(0, 1000),
    )
    def test_translation_invariance_of_prediction(self, d, shift, seed):
        """Shifting every embedding and prototype together preserves labels."""
        rng = np.random.default_rng(seed)
        emb = np.concatenate([rng.normal(size=(4, d)),
                              rng.normal(size=(4, d)) + 10.0])
        labels = np.array([0] * 4 + [1] * 4)
        ncm = NCMClassifier().fit(emb, labels, ["a", "b"])
        shifted = NCMClassifier().fit(emb + shift, labels, ["a", "b"])
        x = rng.normal(size=(6, d))
        assert np.array_equal(ncm.predict(x), shifted.predict(x + shift))
