"""Unit tests for spectral features and extractor composition."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataShapeError, SerializationError
from repro.preprocessing import (
    CombinedFeatureExtractor,
    FeatureExtractor,
    PreprocessingPipeline,
    SPECTRAL_STATS,
    SpectralConfig,
    SpectralFeatureExtractor,
    extractor_from_dict,
    extractor_to_dict,
)
from repro.sensors import SensorDevice, channel_index, get_activity


def tone_windows(freq_hz, n_windows=2, n=240, fs=120.0, channel="accel_x"):
    """Windows whose given channel carries a pure tone at freq_hz."""
    t = np.arange(n) / fs
    windows = np.zeros((n_windows, n, 22))
    windows[:, :, channel_index(channel)] = np.sin(2 * np.pi * freq_hz * t)
    return windows


class TestSpectralConfig:
    def test_default_feature_count(self):
        cfg = SpectralConfig()
        assert cfg.n_features == 3 * len(SPECTRAL_STATS)

    def test_unknown_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            SpectralConfig(signals=("laser",))

    def test_bad_sampling_rejected(self):
        with pytest.raises(ConfigurationError):
            SpectralConfig(sampling_hz=0.0)

    def test_dict_roundtrip(self):
        cfg = SpectralConfig(signals=("accel_mag",), sampling_hz=100.0)
        assert SpectralConfig.from_dict(cfg.to_dict()) == cfg


class TestSpectralExtraction:
    def test_dominant_frequency_of_pure_tone(self):
        cfg = SpectralConfig(signals=("accel_x",))
        extractor = SpectralFeatureExtractor(cfg)
        for freq in (2.0, 5.0, 13.0):
            out = extractor.extract(tone_windows(freq))
            names = extractor.feature_names()
            dom = out[0, names.index("accel_x:dom_freq")]
            assert dom == pytest.approx(freq, abs=0.5)

    def test_pure_tone_has_low_entropy(self, rng):
        cfg = SpectralConfig(signals=("accel_x",))
        extractor = SpectralFeatureExtractor(cfg)
        names = extractor.feature_names()
        idx = names.index("accel_x:entropy")
        tone = extractor.extract(tone_windows(3.0))[0, idx]
        noise = np.zeros((1, 240, 22))
        noise[0, :, channel_index("accel_x")] = rng.normal(size=240)
        noisy = extractor.extract(noise)[0, idx]
        assert tone < 0.4 < noisy

    def test_band_fractions_sum_at_most_one(self, rng):
        windows = rng.normal(size=(3, 120, 22))
        extractor = SpectralFeatureExtractor(SpectralConfig(signals=("gyro_x",)))
        names = extractor.feature_names()
        out = extractor.extract(windows)
        band_cols = [i for i, n in enumerate(names) if ":band_" in n]
        sums = out[:, band_cols].sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-9)
        assert np.all(out[:, band_cols] >= 0.0)

    def test_tone_lands_in_right_band(self):
        extractor = SpectralFeatureExtractor(SpectralConfig(signals=("accel_x",)))
        names = extractor.feature_names()
        out = extractor.extract(tone_windows(25.0))  # vibration-range tone
        high = out[0, names.index("accel_x:band_high")]
        body = out[0, names.index("accel_x:band_body")]
        assert high > 0.9
        assert body < 0.05

    def test_silent_signal_yields_zeros(self):
        windows = np.zeros((2, 120, 22))
        extractor = SpectralFeatureExtractor(SpectralConfig(signals=("accel_x",)))
        assert np.all(extractor.extract(windows) == 0.0)

    def test_extract_one_matches_batch(self, rng):
        windows = rng.normal(size=(3, 120, 22))
        extractor = SpectralFeatureExtractor()
        assert np.allclose(
            extractor.extract_one(windows[1]), extractor.extract(windows)[1]
        )

    def test_shape_validation(self, rng):
        extractor = SpectralFeatureExtractor()
        with pytest.raises(DataShapeError):
            extractor.extract(rng.normal(size=(120, 22)))
        with pytest.raises(DataShapeError):
            extractor.extract(rng.normal(size=(2, 1, 22)))

    def test_separates_walk_from_drive(self):
        """Cadence vs engine vibration: clearly different dominant bands."""
        device = SensorDevice(rng=5)
        extractor = SpectralFeatureExtractor(
            SpectralConfig(signals=("linacc_mag",))
        )
        names = extractor.feature_names()
        body_idx = names.index("linacc_mag:band_body")

        def body_fraction(activity):
            rec = device.record(activity, 4.0)
            windows = rec.data[: 4 * 120].reshape(4, 120, 22)
            return extractor.extract(windows)[:, body_idx].mean()

        assert body_fraction("walk") > 2.0 * body_fraction("drive")


class TestCombinedExtractor:
    def test_concatenates_features(self):
        combined = CombinedFeatureExtractor(
            [FeatureExtractor(), SpectralFeatureExtractor()]
        )
        assert combined.n_features == 80 + 24
        assert len(combined.feature_names()) == 104

    def test_output_is_column_concat(self, rng):
        stat = FeatureExtractor()
        spec = SpectralFeatureExtractor()
        combined = CombinedFeatureExtractor([stat, spec])
        windows = rng.normal(size=(3, 120, 22))
        out = combined.extract(windows)
        assert np.allclose(out[:, :80], stat.extract(windows))
        assert np.allclose(out[:, 80:], spec.extract(windows))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CombinedFeatureExtractor([])

    def test_extract_one(self, rng):
        combined = CombinedFeatureExtractor([SpectralFeatureExtractor()])
        w = rng.normal(size=(120, 22))
        assert combined.extract_one(w).shape == (24,)


class TestExtractorSerialization:
    def test_statistical_roundtrip(self, rng):
        original = FeatureExtractor()
        rebuilt = extractor_from_dict(extractor_to_dict(original))
        windows = rng.normal(size=(2, 60, 22))
        assert np.allclose(rebuilt.extract(windows), original.extract(windows))

    def test_spectral_roundtrip(self, rng):
        original = SpectralFeatureExtractor(
            SpectralConfig(signals=("gyro_mag",), sampling_hz=100.0)
        )
        rebuilt = extractor_from_dict(extractor_to_dict(original))
        windows = rng.normal(size=(2, 60, 22))
        assert np.allclose(rebuilt.extract(windows), original.extract(windows))

    def test_combined_roundtrip(self, rng):
        original = CombinedFeatureExtractor(
            [FeatureExtractor(), SpectralFeatureExtractor()]
        )
        rebuilt = extractor_from_dict(extractor_to_dict(original))
        windows = rng.normal(size=(2, 60, 22))
        assert np.allclose(rebuilt.extract(windows), original.extract(windows))

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            extractor_from_dict({"kind": "wavelet"})

    def test_unsupported_object_rejected(self):
        with pytest.raises(SerializationError):
            extractor_to_dict(object())


class TestPipelineWithCustomExtractor:
    def test_spectral_pipeline_end_to_end(self, tiny_campaign):
        pipeline = PreprocessingPipeline(
            extractor=SpectralFeatureExtractor()
        )
        pipeline.fit_normalizer(tiny_campaign.windows[:20])
        out = pipeline.process_windows(tiny_campaign.windows[:5])
        assert out.shape == (5, 24)

    def test_combined_pipeline_roundtrip(self, tiny_campaign):
        pipeline = PreprocessingPipeline(
            extractor=CombinedFeatureExtractor(
                [FeatureExtractor(), SpectralFeatureExtractor()]
            )
        )
        pipeline.fit_normalizer(tiny_campaign.windows[:20])
        rebuilt = PreprocessingPipeline.from_dict(pipeline.to_dict())
        a = pipeline.process_windows(tiny_campaign.windows[:3])
        b = rebuilt.process_windows(tiny_campaign.windows[:3])
        assert np.allclose(a, b)

    def test_both_config_and_extractor_rejected(self):
        from repro.preprocessing import FeatureConfig

        with pytest.raises(ConfigurationError):
            PreprocessingPipeline(
                feature_config=FeatureConfig(),
                extractor=SpectralFeatureExtractor(),
            )
