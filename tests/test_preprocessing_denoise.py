"""Unit tests for denoising filters."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SerializationError
from repro.preprocessing import (
    ButterworthLowpass,
    IdentityFilter,
    MedianFilter,
    MovingAverageFilter,
    denoiser_from_dict,
)


def noisy_sine(rng, n=480, freq=2.0, noise=0.3):
    t = np.arange(n) / 120.0
    clean = np.sin(2 * np.pi * freq * t)
    return clean, clean + rng.normal(0, noise, n)


class TestIdentityFilter:
    def test_passthrough(self, rng):
        data = rng.normal(size=(50, 3))
        assert np.allclose(IdentityFilter().apply(data), data)

    def test_roundtrip(self):
        f = denoiser_from_dict(IdentityFilter().to_dict())
        assert isinstance(f, IdentityFilter)


class TestMovingAverage:
    def test_reduces_noise(self, rng):
        clean, noisy = noisy_sine(rng)
        smoothed = MovingAverageFilter(size=5).apply(noisy)
        assert np.abs(smoothed - clean).mean() < np.abs(noisy - clean).mean()

    def test_preserves_shape_2d(self, rng):
        data = rng.normal(size=(100, 4))
        assert MovingAverageFilter(size=7).apply(data).shape == (100, 4)

    def test_constant_signal_unchanged(self):
        data = np.full((50, 2), 3.0)
        assert np.allclose(MovingAverageFilter(size=5).apply(data), 3.0)

    def test_size_one_is_identity(self, rng):
        data = rng.normal(size=(30, 2))
        assert np.allclose(MovingAverageFilter(size=1).apply(data), data)

    def test_even_size_rejected(self):
        with pytest.raises(ConfigurationError, match="odd"):
            MovingAverageFilter(size=4)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MovingAverageFilter(size=0)

    def test_empty_input(self):
        out = MovingAverageFilter(size=3).apply(np.zeros((0, 2)))
        assert out.shape == (0, 2)

    def test_serialization_roundtrip(self):
        f = denoiser_from_dict(MovingAverageFilter(size=9).to_dict())
        assert f == MovingAverageFilter(size=9)


class TestMedianFilter:
    def test_removes_spikes(self, rng):
        clean, _ = noisy_sine(rng, noise=0.0)
        spiked = clean.copy()
        spiked[[50, 150, 300]] += 10.0
        filtered = MedianFilter(size=5).apply(spiked)
        assert np.abs(filtered - clean).max() < 1.0

    def test_better_than_moving_average_on_spikes(self, rng):
        clean, _ = noisy_sine(rng, noise=0.0)
        spiked = clean.copy()
        spiked[100] += 20.0
        med = MedianFilter(size=5).apply(spiked)
        avg = MovingAverageFilter(size=5).apply(spiked)
        assert np.abs(med - clean).max() < np.abs(avg - clean).max()

    def test_2d_column_independence(self, rng):
        data = rng.normal(size=(60, 2))
        out = MedianFilter(size=3).apply(data)
        col0 = MedianFilter(size=3).apply(data[:, 0])
        assert np.allclose(out[:, 0], col0)

    def test_even_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MedianFilter(size=2)

    def test_serialization_roundtrip(self):
        f = denoiser_from_dict(MedianFilter(size=7).to_dict())
        assert f == MedianFilter(size=7)


class TestButterworth:
    def test_attenuates_high_frequency(self, rng):
        t = np.arange(480) / 120.0
        low = np.sin(2 * np.pi * 2.0 * t)
        high = np.sin(2 * np.pi * 50.0 * t)
        filtered = ButterworthLowpass(cutoff_hz=10.0).apply(low + high)
        # The low-frequency component must survive, the 50 Hz one must die.
        assert np.abs(filtered - low).std() < 0.1

    def test_zero_phase(self, rng):
        # filtfilt must not shift the signal in time.
        t = np.arange(480) / 120.0
        low = np.sin(2 * np.pi * 2.0 * t)
        filtered = ButterworthLowpass(cutoff_hz=20.0).apply(low)
        lag = np.argmax(np.correlate(filtered, low, mode="full")) - (len(low) - 1)
        assert lag == 0

    def test_cutoff_above_nyquist_rejected(self):
        with pytest.raises(ConfigurationError, match="Nyquist"):
            ButterworthLowpass(cutoff_hz=60.0, sampling_hz=120.0)

    def test_short_input_falls_back_to_identity(self, rng):
        data = rng.normal(size=(5, 3))
        assert np.allclose(ButterworthLowpass().apply(data), data)

    def test_2d_shape_preserved(self, rng):
        data = rng.normal(size=(200, 22))
        assert ButterworthLowpass().apply(data).shape == (200, 22)

    def test_serialization_roundtrip(self):
        original = ButterworthLowpass(cutoff_hz=15.0, sampling_hz=100.0, order=3)
        rebuilt = denoiser_from_dict(original.to_dict())
        assert rebuilt == original

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            ButterworthLowpass(order=0)


class TestDenoiserFromDict:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError, match="unknown"):
            denoiser_from_dict({"kind": "quantum"})

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            denoiser_from_dict({"no_kind": 1})
