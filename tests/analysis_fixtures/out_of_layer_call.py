"""Fixture: serving-layer code re-implementing the pipeline.  Never
imported; parsed by reprolint in tests (the checker decides by *path*,
so tests lint it under a synthetic ``src/repro/serving/`` path).
Expected: 5x entry-point (two restricted imports, two restricted name
references, one NCM distance-internal call)."""

from repro.preprocessing import FeatureExtractor, sliding_windows


def serve_windows(ncm, data, window_len):
    windows = sliding_windows(data, window_len, window_len)
    features = FeatureExtractor().extract(windows)
    return ncm.distances(features)
