"""Fixture: a suppression pragma with no justification text.  Legal in
default mode, a ``pragma-justification`` error under ``--strict``.
Expected: 0 violations default / 1 error strict."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # reprolint: disable=broad-except
        return None
