"""Fixture: blocking calls on the event loop.  Never imported; parsed by
reprolint in tests.  Expected: 2x async-blocking (time.sleep + direct
engine call); the sync closure and the pool submission are legal."""

import asyncio
import time


async def tick(engine, windows, pool):
    time.sleep(0.01)  # async-blocking: blocks the event loop
    batch = engine.infer_windows(windows)  # async-blocking: sync engine call
    await asyncio.sleep(0)
    return batch, pool.submit(engine, "infer_windows", windows)  # fine


async def tick_via_pool(handle, windows, pool):
    def payload():
        return handle.engine.infer_windows(windows)  # fine: pool payload

    future = pool.submit_fn(payload)
    return await asyncio.wrap_future(future)


def sync_path(engine, windows):
    time.sleep(0.01)  # fine: not on the event loop
    return engine.infer_windows(windows)  # fine: the sync path may block
