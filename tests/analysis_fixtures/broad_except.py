"""Fixture: broad exception handlers.  Never imported; parsed by
reprolint in tests.  Expected: 1x broad-except (the silent swallow);
the re-raising and pragma-justified handlers are legal."""

from repro.exceptions import MagnetoError


def swallow(fn):
    try:
        return fn()
    except Exception:  # broad-except: swallows silently
        return None


def annotate_and_reraise(fn):
    try:
        return fn()
    except Exception as exc:  # fine: re-raises
        raise MagnetoError("context") from exc


def isolated(fn):
    try:
        return fn()
    except Exception:  # reprolint: disable=broad-except — failure isolation fixture: the caller folds the None into its own error accounting
        return None
