"""Fixture: idiomatic code that every checker should pass untouched.
Expected: 0 violations."""

import asyncio

import numpy as np

from repro.exceptions import DataShapeError


class WindowStreamState:
    def __init__(self, chunk: np.ndarray) -> None:
        self.tail = chunk.copy()

    def pending(self) -> np.ndarray:
        return self.tail.copy()


def validate(windows: np.ndarray) -> np.ndarray:
    if windows.ndim != 3:
        raise DataShapeError(f"expected 3-D, got {windows.ndim}-D")
    return windows


async def tick(pool, engine, windows):
    await asyncio.sleep(0)
    return pool.submit(engine, "infer_windows", windows)
