"""Fixture: the PR 3 carried-tail bug class — aliasing assignments and
view returns in a streaming class.  Never imported; parsed by reprolint
in tests.  Expected: 3x array-alias, 2x view-return."""

import numpy as np


class ChunkStreamState:
    def __init__(self, chunk: np.ndarray, window_len: int) -> None:
        self.window_len = int(window_len)  # scalar: not flagged
        self.tail = chunk  # array-alias: stores the caller's array
        self.head = chunk[: self.window_len]  # array-alias: stores a view
        self.safe = chunk.copy()  # copied: not flagged

    def push(self, chunk: np.ndarray) -> None:
        self.tail = np.asarray(chunk)  # array-alias: asarray may alias
        self.safe = np.array(chunk)  # np.array copies: not flagged

    def pending(self) -> np.ndarray:
        return self.tail[1:]  # view-return: live view of internal state

    def buffer_of(self) -> np.ndarray:
        return self.tail  # view-return: internal buffer by reference

    def pending_copy(self) -> np.ndarray:
        return self.tail[1:].copy()  # copied out: not flagged


class PlainExtractor:
    """Class name matches no stateful pattern — exempt from the rule."""

    def __init__(self, chunk: np.ndarray) -> None:
        self.chunk = chunk  # not flagged: not a Stream/Session/State class
