"""Fixture: asyncio locks acquired in arrival (unsorted) order.  Never
imported; parsed by reprolint in tests.  Expected: 1x lock-order."""

import asyncio

LOCKS = {}


def _lock_for(session_id):
    return LOCKS.setdefault(session_id, asyncio.Lock())


async def acquire_unsorted(session_ids):
    locks = [_lock_for(sid) for sid in session_ids]  # arrival order!
    acquired = []
    for lock in locks:  # lock-order: iterable has no sorted() provenance
        await lock.acquire()
        acquired.append(lock)
    return acquired


async def acquire_sorted(session_ids):
    locks = [_lock_for(sid) for sid in sorted(session_ids)]
    acquired = []
    for lock in locks:  # fine: provenance includes sorted()
        await lock.acquire()
        acquired.append(lock)
    return acquired


async def acquire_sorted_inline(session_ids):
    for sid in sorted(session_ids):  # fine: sorted() right in the iterable
        await _lock_for(sid).acquire()
