"""Fixture: raises bypassing the repro.exceptions taxonomy.  Never
imported; parsed by reprolint in tests.  Expected: 3x raw-raise."""

from repro.exceptions import DataShapeError


def validate(windows):
    if windows.ndim != 3:
        raise ValueError(f"expected 3-D, got {windows.ndim}-D")  # raw-raise
    if windows.shape[0] == 0:
        raise RuntimeError("empty batch")  # raw-raise
    if not hasattr(windows, "dtype"):
        raise TypeError("not an array")  # raw-raise
    if windows.shape[1] < 1:
        raise DataShapeError("window_len must be >= 1")  # typed: fine


def todo():
    raise NotImplementedError  # conventional: exempt


def reraise():
    try:
        validate(None)
    except AttributeError:
        raise  # bare re-raise: fine
