"""Unit tests for the edge runtime accounting and the demo app."""

import numpy as np
import pytest

from repro.edge_runtime import (
    AppState,
    EdgeRuntime,
    MagnetoApp,
    MIDRANGE_PHONE,
    confidence_bar,
    render_event_log,
    render_prediction,
    render_session,
)
from repro.exceptions import (
    ConfigurationError,
    ResourceExceededError,
    UnknownActivityError,
)


@pytest.fixture
def app(edge, scenario):
    return MagnetoApp(edge, scenario.sensor_device)


class TestEdgeRuntime:
    def test_inference_accounted(self, edge, scenario):
        runtime = EdgeRuntime(edge, MIDRANGE_PHONE)
        rec = scenario.sensor_device.record("walk", 1.0)
        runtime.infer_window(rec.data)
        assert runtime.stats.inferences == 1
        assert runtime.stats.compute_energy_joules > 0
        assert runtime.stats.wall_clock_ms > 0

    def test_learning_accounted_and_storage_checked(self, edge, scenario):
        runtime = EdgeRuntime(edge, MIDRANGE_PHONE)
        rec = scenario.sensor_device.record("gesture_hi", 15.0)
        runtime.learn_activity("gesture_hi", rec)
        assert runtime.stats.retrainings == 1
        assert runtime.check_storage() > 0

    def test_storage_budget_enforced(self, edge):
        runtime = EdgeRuntime(edge, MIDRANGE_PHONE,
                              storage_budget_fraction=1e-7)
        with pytest.raises(ResourceExceededError):
            runtime.check_storage()

    def test_summary_keys(self, edge):
        runtime = EdgeRuntime(edge, MIDRANGE_PHONE)
        summary = runtime.summary()
        assert {"inferences", "retrainings", "footprint_bytes",
                "storage_budget_bytes"} <= set(summary)

    def test_bad_fraction_rejected(self, edge):
        with pytest.raises(ResourceExceededError):
            EdgeRuntime(edge, MIDRANGE_PHONE, storage_budget_fraction=0.0)


class TestAppStates:
    def test_starts_idle(self, app):
        assert app.state is AppState.IDLE

    def test_infer_live_returns_one_frame_per_second(self, app):
        frames = app.infer_live("walk", 4.0)
        assert len(frames) == 4
        assert app.state is AppState.IDLE

    def test_frames_carry_truth_for_eval(self, app):
        frames = app.infer_live("still", 3.0)
        assert all(f.true_activity == "still" for f in frames)
        accuracy = np.mean([f.activity == f.true_activity for f in frames])
        assert accuracy >= 2 / 3

    def test_record_stages_without_learning(self, app):
        app.record_activity("my_gesture", "gesture_hi", duration_s=10.0)
        assert "my_gesture" not in app.edge.classes
        assert app.state is AppState.IDLE

    def test_learn_staged_updates_model(self, app):
        app.record_activity("my_gesture", "gesture_hi", duration_s=20.0)
        result = app.learn_staged("my_gesture")
        assert result.class_name == "my_gesture"
        assert "my_gesture" in app.edge.classes

    def test_learn_unstaged_rejected(self, app):
        with pytest.raises(UnknownActivityError):
            app.learn_staged("never_recorded")

    def test_staged_recording_consumed(self, app):
        app.record_activity("g", "gesture_hi", duration_s=15.0)
        app.learn_staged("g")
        with pytest.raises(UnknownActivityError):
            app.learn_staged("g")

    def test_calibrate_staged(self, app):
        app.record_activity("walk", "walk", duration_s=15.0)
        result = app.calibrate_staged("walk")
        assert result.operation == "calibrate"

    def test_event_log_grows(self, app):
        app.infer_live("still", 2.0)
        assert len(app.events) >= 2
        states = {e.state for e in app.events}
        assert AppState.INFERRING in states

    def test_validation(self, app):
        with pytest.raises(ConfigurationError):
            app.infer_live("walk", 0.0)
        with pytest.raises(ConfigurationError):
            app.record_activity("", "walk")


class TestDemoScenario:
    def test_figure3_flow(self, app):
        frames = app.run_demo_scenario(
            new_label="hi", performed_new_activity="gesture_hi",
            warmup_activities=["still"], infer_s=3.0, record_s=15.0,
        )
        assert set(frames) == {"warmup:still", "new:hi"}
        assert "hi" in app.edge.classes
        new_frames = frames["new:hi"]
        accuracy = np.mean([f.activity == "hi" for f in new_frames])
        assert accuracy >= 2 / 3


class TestDisplay:
    def test_confidence_bar_extremes(self):
        assert confidence_bar(0.0, width=10) == "[          ]   0%"
        assert confidence_bar(1.0, width=10) == "[##########] 100%"

    def test_confidence_bar_clamps(self):
        assert "100%" in confidence_bar(1.5)

    def test_render_prediction_contains_fields(self, app):
        frame = app.infer_live("still", 1.0)[0]
        panel = render_prediction(frame)
        assert "MAGNETO" in panel
        assert frame.activity in panel
        assert "ms" in panel

    def test_render_session_marks_misses(self, app):
        frames = app.infer_live("walk", 3.0)
        text = render_session(frames)
        assert text.count("t=") == 3

    def test_render_event_log(self, app):
        app.infer_live("still", 1.0)
        text = render_event_log(app.events)
        assert "inferring" in text
