"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval import (
    accuracy,
    accuracy_by_class_name,
    average_forgetting,
    backward_transfer,
    confusion_matrix,
    forgetting_per_class,
    macro_f1,
    per_class_accuracy,
)
from repro.exceptions import DataShapeError


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2], [0, 1, 2]) == 1.0

    def test_half(self):
        assert accuracy([0, 1, 0, 1], [0, 1, 1, 0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            accuracy([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            accuracy([0, 1], [0])


class TestConfusionMatrix:
    def test_counts(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], n_classes=2)
        assert np.array_equal(m, [[1, 1], [0, 2]])

    def test_rows_are_true_classes(self):
        m = confusion_matrix([0, 0, 0], [1, 1, 1], n_classes=2)
        assert m[0, 1] == 3
        assert m.sum() == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(DataShapeError):
            confusion_matrix([0, 2], [0, 1], n_classes=2)

    def test_negative_rejected(self):
        with pytest.raises(DataShapeError):
            confusion_matrix([0, -1], [0, 1], n_classes=2)


class TestPerClassAccuracy:
    def test_values(self):
        acc = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1], n_classes=2)
        assert acc[0] == 0.5
        assert acc[1] == 1.0

    def test_absent_class_is_nan(self):
        acc = per_class_accuracy([0, 0], [0, 0], n_classes=2)
        assert np.isnan(acc[1])

    def test_by_name_drops_absent(self):
        named = accuracy_by_class_name([0, 0], [0, 1], ["a", "b"])
        assert named == {"a": 0.5}


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1([0, 1, 0, 1], [0, 1, 0, 1], 2) == 1.0

    def test_worst(self):
        assert macro_f1([0, 0], [1, 1], 2) == 0.0

    def test_imbalance_weighting(self):
        # Macro-F1 punishes failure on the rare class more than accuracy does.
        y_true = [0] * 98 + [1] * 2
        y_pred = [0] * 100
        assert accuracy(y_true, y_pred) == 0.98
        assert macro_f1(y_true, y_pred, 2) < 0.6

    def test_no_support_rejected(self):
        with pytest.raises(DataShapeError):
            macro_f1(np.array([], dtype=int), np.array([], dtype=int), 2)


class TestForgetting:
    def test_per_class_drop(self):
        before = {"walk": 0.9, "run": 0.8}
        after = {"walk": 0.7, "run": 0.8, "jump": 0.95}
        drops = forgetting_per_class(before, after)
        assert drops == {"walk": pytest.approx(0.2), "run": pytest.approx(0.0)}

    def test_average(self):
        before = {"a": 1.0, "b": 0.8}
        after = {"a": 0.8, "b": 0.8}
        assert average_forgetting(before, after) == pytest.approx(0.1)

    def test_backward_transfer_is_negated_forgetting(self):
        before = {"a": 0.8}
        after = {"a": 0.9}
        assert backward_transfer(before, after) == pytest.approx(0.1)
        assert average_forgetting(before, after) == pytest.approx(-0.1)

    def test_new_classes_ignored(self):
        before = {"a": 1.0}
        after = {"a": 1.0, "new": 0.1}
        assert average_forgetting(before, after) == 0.0

    def test_no_overlap_rejected(self):
        with pytest.raises(DataShapeError):
            average_forgetting({"a": 1.0}, {"b": 1.0})
