"""Each checker against its seeded fixture: exact rules, exact lines.

The fixtures in ``tests/analysis_fixtures/`` are never imported — they
exist to be *parsed*.  Every seeded violation carries a trailing marker
comment (``# array-alias: ...``), so the expected line numbers are read
from the fixture text itself instead of being hard-coded.
"""

import pathlib

import pytest

from repro.analysis import (
    ArrayAliasingChecker,
    AsyncHygieneChecker,
    DEFAULT_CHECKERS,
    EntryPointChecker,
    ExceptionTaxonomyChecker,
    lint_source,
)

FIXTURES = pathlib.Path(__file__).parent / "analysis_fixtures"


def fixture_text(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def marker_lines(text: str, marker: str) -> list:
    """1-based lines whose trailing comment starts with ``# <marker>``."""
    return [
        lineno
        for lineno, line in enumerate(text.splitlines(), start=1)
        if f"# {marker}" in line
    ]


def found(text, checker, path="<snippet>.py"):
    """``(rule, line)`` pairs the checker reports for the fixture text."""
    return [
        (v.rule, v.line) for v in lint_source(text, [checker], path=path)
    ]


class TestArrayAliasing:
    def test_fixture_violations(self):
        text = fixture_text("alias_assign.py")
        expected = sorted(
            [("array-alias", n) for n in marker_lines(text, "array-alias")]
            + [("view-return", n) for n in marker_lines(text, "view-return")],
            key=lambda pair: pair[1],
        )
        assert len(expected) == 5  # fixture contract: 3 aliases, 2 views
        assert found(text, ArrayAliasingChecker()) == expected

    def test_messages_name_class_and_attribute(self):
        text = fixture_text("alias_assign.py")
        violations = lint_source(text, [ArrayAliasingChecker()])
        aliases = [v for v in violations if v.rule == "array-alias"]
        assert all("ChunkStreamState" in v.message for v in aliases)
        assert any("'chunk'" in v.message for v in aliases)

    def test_non_stateful_class_exempt(self):
        source = (
            "class Helper:\n"
            "    def __init__(self, chunk):\n"
            "        self.chunk = chunk\n"
        )
        assert found(source, ArrayAliasingChecker()) == []

    def test_copy_on_the_way_in_passes(self):
        source = (
            "class TailStream:\n"
            "    def push(self, chunk):\n"
            "        self.tail = chunk.copy()\n"
        )
        assert found(source, ArrayAliasingChecker()) == []

    def test_asarray_counts_as_alias(self):
        source = (
            "class TailStream:\n"
            "    def push(self, chunk):\n"
            "        self.tail = np.asarray(chunk)\n"
        )
        assert found(source, ArrayAliasingChecker()) == [("array-alias", 3)]


class TestAsyncHygiene:
    def test_blocking_fixture(self):
        text = fixture_text("async_blocking.py")
        expected = [
            ("async-blocking", n)
            for n in marker_lines(text, "async-blocking")
        ]
        assert len(expected) == 2
        assert found(text, AsyncHygieneChecker()) == expected

    def test_lock_order_fixture(self):
        text = fixture_text("unsorted_locks.py")
        expected = [
            ("lock-order", n) for n in marker_lines(text, "lock-order")
        ]
        assert len(expected) == 1
        assert found(text, AsyncHygieneChecker()) == expected

    def test_sync_function_may_block(self):
        source = "import time\n\ndef tick():\n    time.sleep(1)\n"
        assert found(source, AsyncHygieneChecker()) == []

    def test_from_time_import_sleep_alias_caught(self):
        source = (
            "from time import sleep as snooze\n\n"
            "async def tick():\n"
            "    snooze(1)\n"
        )
        assert found(source, AsyncHygieneChecker()) == [("async-blocking", 4)]

    def test_async_with_lock_loop_needs_sorting(self):
        source = (
            "async def tick(locks):\n"
            "    for lock in locks:\n"
            "        async with lock:\n"
            "            pass\n"
        )
        assert found(source, AsyncHygieneChecker()) == [("lock-order", 2)]


class TestEntryPoint:
    def test_fixture_from_a_serving_path(self):
        text = fixture_text("out_of_layer_call.py")
        violations = lint_source(
            text, [EntryPointChecker()], path="src/repro/serving/rogue.py"
        )
        assert [v.rule for v in violations] == ["entry-point"] * 5

    def test_fixture_structure(self):
        text = fixture_text("out_of_layer_call.py")
        violations = lint_source(
            text, [EntryPointChecker()], path="src/repro/serving/rogue.py"
        )
        import_hits = [v for v in violations if "import of" in v.message]
        ref_hits = [v for v in violations if "reference to" in v.message]
        call_hits = [v for v in violations if "distance internal" in v.message]
        assert (len(import_hits), len(ref_hits), len(call_hits)) == (2, 2, 1)

    @pytest.mark.parametrize("path", [
        "src/repro/core/engine.py",
        "src/repro/preprocessing/features.py",
    ])
    def test_allowed_layers_exempt(self, path):
        text = fixture_text("out_of_layer_call.py")
        assert lint_source(text, [EntryPointChecker()], path=path) == []

    def test_ncm_construction_is_allowed(self):
        source = (
            "from repro.core.ncm import NCMClassifier\n"
            "clf = NCMClassifier()\n"
        )
        violations = lint_source(
            source, [EntryPointChecker()], path="src/repro/serving/reg.py"
        )
        assert violations == []


class TestExceptionTaxonomy:
    def test_raw_raise_fixture(self):
        text = fixture_text("raw_raise.py")
        expected = [
            ("raw-raise", n) for n in marker_lines(text, "raw-raise")
        ]
        assert len(expected) == 3
        assert found(text, ExceptionTaxonomyChecker()) == expected

    def test_broad_except_fixture(self):
        text = fixture_text("broad_except.py")
        expected = [
            ("broad-except", n)
            for n in marker_lines(text, "broad-except:")
        ]
        assert len(expected) == 1
        assert found(text, ExceptionTaxonomyChecker()) == expected

    def test_bare_except_flagged(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        violations = lint_source(source, [ExceptionTaxonomyChecker()])
        assert [v.rule for v in violations] == ["broad-except"]
        assert "bare except" in violations[0].message

    def test_reraise_from_closure_does_not_count(self):
        source = (
            "try:\n"
            "    pass\n"
            "except Exception:\n"
            "    def later():\n"
            "        raise\n"
        )
        violations = lint_source(source, [ExceptionTaxonomyChecker()])
        assert [v.rule for v in violations] == ["broad-except"]


class TestStrictPragmas:
    def test_bad_pragma_fixture_clean_by_default(self):
        text = fixture_text("bad_pragma.py")
        assert lint_source(text, list_of_all()) == []

    def test_bad_pragma_fixture_fails_strict(self):
        text = fixture_text("bad_pragma.py")
        violations = lint_source(text, list_of_all(), strict=True)
        assert [v.rule for v in violations] == ["pragma-justification"]


class TestCleanFixture:
    def test_no_checker_objects(self):
        text = fixture_text("clean.py")
        assert lint_source(text, list_of_all(), strict=True) == []


def list_of_all():
    return [cls() for cls in DEFAULT_CHECKERS]
