"""Unit tests for activity profiles and the registry."""

import pytest

from repro.exceptions import ConfigurationError, UnknownActivityError
from repro.sensors import (
    BASE_ACTIVITIES,
    GESTURE_ACTIVITIES,
    ActivityProfile,
    get_activity,
    list_activities,
    register_activity,
    unregister_activity,
)


class TestBaseActivities:
    def test_paper_demonstration_set(self):
        # Section 4.1.2: Drive, E-scooter, Run, Still, Walk.
        assert BASE_ACTIVITIES == ("drive", "escooter", "run", "still", "walk")

    def test_all_base_registered(self):
        for name in BASE_ACTIVITIES:
            assert get_activity(name).name == name

    def test_gestures_registered(self):
        for name in GESTURE_ACTIVITIES:
            assert get_activity(name).name == name

    def test_still_is_quietest(self):
        still = get_activity("still")
        walk = get_activity("walk")
        assert sum(still.accel_amp) < sum(walk.accel_amp)
        assert still.step_freq_hz == 0.0

    def test_run_faster_and_stronger_than_walk(self):
        walk, run = get_activity("walk"), get_activity("run")
        assert run.step_freq_hz > walk.step_freq_hz
        assert sum(run.accel_amp) > sum(walk.accel_amp)

    def test_vehicles_have_vibration(self):
        for name in ("drive", "escooter"):
            profile = get_activity(name)
            assert profile.vib_freq_hz > 0
            assert profile.vib_amp > 0

    def test_walking_has_no_vehicle_vibration(self):
        assert get_activity("walk").vib_amp == 0.0

    def test_stairs_have_barometric_trend(self):
        assert get_activity("stairs_up").baro_trend != 0.0


class TestProfileValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivityProfile(name="")

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivityProfile(name="x", step_freq_hz=-1.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivityProfile(name="x", noise_scale=-0.1)

    def test_empty_harmonics_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivityProfile(name="x", harmonics=())

    def test_with_name_copies(self):
        walk = get_activity("walk")
        renamed = walk.with_name("my_walk")
        assert renamed.name == "my_walk"
        assert renamed.step_freq_hz == walk.step_freq_hz


class TestRegistry:
    def test_unknown_activity_raises_with_listing(self):
        with pytest.raises(UnknownActivityError, match="registered:"):
            get_activity("teleport")

    def test_list_is_sorted(self):
        names = list_activities()
        assert names == sorted(names)

    def test_register_and_unregister_custom(self):
        profile = ActivityProfile(name="test_custom_xyz", step_freq_hz=1.0)
        register_activity(profile)
        try:
            assert get_activity("test_custom_xyz").step_freq_hz == 1.0
        finally:
            unregister_activity("test_custom_xyz")
        with pytest.raises(UnknownActivityError):
            get_activity("test_custom_xyz")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_activity(get_activity("walk"))

    def test_register_overwrite_allowed(self):
        original = get_activity("walk")
        try:
            register_activity(original.with_name("walk"), overwrite=True)
            assert get_activity("walk").step_freq_hz == original.step_freq_hz
        finally:
            register_activity(original, overwrite=True)

    def test_unregister_missing_is_noop(self):
        unregister_activity("never_was_registered")
