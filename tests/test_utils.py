"""Unit tests for repro.utils."""

import numpy as np
import pytest

from repro.exceptions import DataShapeError
from repro.utils import (
    Timer,
    check_1d,
    check_2d,
    check_labels,
    ensure_rng,
    format_bytes,
    sizeof_array_bytes,
    spawn_rng,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(10)
        b = ensure_rng(2).random(10)
        assert not np.allclose(a, b)


class TestSpawnRng:
    def test_child_is_independent_object(self):
        parent = ensure_rng(7)
        child = spawn_rng(parent)
        assert child is not parent

    def test_children_are_deterministic_given_parent_seed(self):
        a = spawn_rng(ensure_rng(7)).random(4)
        b = spawn_rng(ensure_rng(7)).random(4)
        assert np.allclose(a, b)

    def test_successive_children_differ(self):
        parent = ensure_rng(7)
        a = spawn_rng(parent).random(4)
        b = spawn_rng(parent).random(4)
        assert not np.allclose(a, b)


class TestCheck2d:
    def test_accepts_2d(self):
        out = check_2d("x", [[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(DataShapeError, match="must be 2-D"):
            check_2d("x", np.zeros(3))

    def test_rejects_3d(self):
        with pytest.raises(DataShapeError):
            check_2d("x", np.zeros((2, 2, 2)))

    def test_column_count_enforced(self):
        with pytest.raises(DataShapeError, match="columns"):
            check_2d("x", np.zeros((2, 3)), n_cols=4)

    def test_column_count_satisfied(self):
        assert check_2d("x", np.zeros((2, 3)), n_cols=3).shape == (2, 3)


class TestCheck1d:
    def test_accepts_1d(self):
        assert check_1d("v", np.arange(4)).shape == (4,)

    def test_rejects_2d(self):
        with pytest.raises(DataShapeError):
            check_1d("v", np.zeros((2, 2)))

    def test_length_enforced(self):
        with pytest.raises(DataShapeError, match="length"):
            check_1d("v", np.arange(4), length=5)


class TestCheckLabels:
    def test_int_labels_pass(self):
        out = check_labels("y", [0, 1, 2])
        assert out.dtype == np.int64

    def test_integral_floats_cast(self):
        out = check_labels("y", np.array([0.0, 1.0, 2.0]))
        assert out.dtype == np.int64

    def test_fractional_floats_rejected(self):
        with pytest.raises(DataShapeError, match="integer"):
            check_labels("y", np.array([0.5, 1.0]))

    def test_length_enforced(self):
        with pytest.raises(DataShapeError):
            check_labels("y", [0, 1], n=3)

    def test_2d_rejected(self):
        with pytest.raises(DataShapeError):
            check_labels("y", np.zeros((2, 2), dtype=int))


class TestTimer:
    def test_measures_positive_time(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed_s >= 0.0
        assert t.elapsed_ms == pytest.approx(t.elapsed_s * 1000.0)


class TestSizeof:
    def test_float32_default(self):
        assert sizeof_array_bytes(np.zeros((10, 4))) == 10 * 4 * 4

    def test_float64(self):
        assert sizeof_array_bytes(np.zeros((10, 4)), dtype=np.float64) == 320

    def test_paper_support_set_size(self):
        # Paper: 200 observations/class (80 features) in 32-bit is ~0.5 MB
        # for the five classes together... verify our accounting's order of
        # magnitude: 200 x 80 x 4 B = 64 kB per class, 320 kB for five.
        per_class = sizeof_array_bytes(np.zeros((200, 80)))
        assert per_class == 64000
        assert 5 * per_class < 0.5 * 1024 * 1024


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512.00 B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.00 KB"

    def test_megabytes(self):
        assert format_bytes(5 * 1024 * 1024) == "5.00 MB"

    def test_gigabytes_cap(self):
        assert "GB" in format_bytes(3 * 1024**3)
