"""Unit tests for NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    DataShapeError,
    TrainingStateError,
)
from repro.nn import (
    BatchNorm1d,
    Dropout,
    Linear,
    Parameter,
    ReLU,
    Tanh,
    layer_from_config,
)


def numerical_grad_wrt_input(layer, x, grad_out, eps=1e-6):
    """Finite-difference gradient of sum(forward(x) * grad_out) w.r.t. x."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        x_plus = x.copy()
        x_plus[idx] += eps
        x_minus = x.copy()
        x_minus[idx] -= eps
        f_plus = float((layer.forward(x_plus, training=True) * grad_out).sum())
        f_minus = float((layer.forward(x_minus, training=True) * grad_out).sum())
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad


def numerical_grad_wrt_param(layer, param, x, grad_out, eps=1e-6):
    """Finite-difference gradient w.r.t. one Parameter's data."""
    grad = np.zeros_like(param.data)
    for idx in np.ndindex(*param.data.shape):
        original = param.data[idx]
        param.data[idx] = original + eps
        f_plus = float((layer.forward(x, training=True) * grad_out).sum())
        param.data[idx] = original - eps
        f_minus = float((layer.forward(x, training=True) * grad_out).sum())
        param.data[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad


class TestParameter:
    def test_grad_initialized_to_zero(self):
        p = Parameter("w", np.ones((2, 3)))
        assert np.all(p.grad == 0.0)

    def test_zero_grad(self):
        p = Parameter("w", np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x)
        assert np.allclose(out, x @ layer.weight.data + layer.bias.data)

    def test_input_gradient_check(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        grad_out = rng.normal(size=(2, 3))
        layer.forward(x, training=True)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_wrt_input(layer, x, grad_out)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_weight_gradient_check(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x, training=True)
        layer.weight.zero_grad()
        layer.backward(grad_out)
        numeric = numerical_grad_wrt_param(layer, layer.weight, x, grad_out)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-6)

    def test_bias_gradient_check(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x, training=True)
        layer.bias.zero_grad()
        layer.backward(grad_out)
        numeric = numerical_grad_wrt_param(layer, layer.bias, x, grad_out)
        assert np.allclose(layer.bias.grad, numeric, atol=1e-6)

    def test_gradient_accumulation(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x, training=True)
        layer.backward(grad_out)
        once = layer.weight.grad.copy()
        layer.backward(grad_out)
        assert np.allclose(layer.weight.grad, 2 * once)

    def test_wrong_input_width_rejected(self, rng):
        layer = Linear(4, 2, rng=rng)
        with pytest.raises(DataShapeError):
            layer.forward(rng.normal(size=(3, 5)))

    def test_backward_before_forward_rejected(self, rng):
        layer = Linear(2, 2, rng=rng)
        with pytest.raises(TrainingStateError):
            layer.backward(np.zeros((1, 2)))

    def test_inference_forward_does_not_enable_backward(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer.forward(rng.normal(size=(1, 2)), training=False)
        with pytest.raises(TrainingStateError):
            layer.backward(np.zeros((1, 2)))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            Linear(0, 3)

    def test_config_roundtrip(self, rng):
        layer = Linear(4, 3, init="xavier_uniform", rng=rng)
        rebuilt = layer_from_config(layer.to_config(), rng=rng)
        assert isinstance(rebuilt, Linear)
        assert rebuilt.in_features == 4
        assert rebuilt.out_features == 3


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Tanh])
    def test_gradient_check(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.normal(size=(3, 4)) + 0.1  # avoid the ReLU kink at 0
        grad_out = rng.normal(size=(3, 4))
        layer.forward(x, training=True)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_wrt_input(layer, x, grad_out)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_relu_blocks_gradient_at_negative(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 1.0]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 3)) * 10)
        assert np.all(np.abs(out) <= 1.0)


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(10, 4))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_training_zeroes_some_units(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 10))
        out = layer.forward(x, training=True)
        dropped = np.mean(out == 0.0)
        assert 0.3 < dropped < 0.7

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 50))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0.0, out == 0.0)

    def test_rate_one_rejected(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_zero_rate_is_identity_in_training(self, rng):
        layer = Dropout(0.0)
        x = rng.normal(size=(5, 3))
        assert np.allclose(layer.forward(x, training=True), x)


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm1d(4)
        x = rng.normal(3.0, 5.0, size=(200, 4))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_converge(self, rng):
        layer = BatchNorm1d(2, momentum=0.5)
        for _ in range(30):
            layer.forward(rng.normal(5.0, 2.0, size=(100, 2)), training=True)
        assert np.allclose(layer.running_mean, 5.0, atol=0.5)
        assert np.allclose(np.sqrt(layer.running_var), 2.0, atol=0.5)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm1d(2)
        for _ in range(20):
            layer.forward(rng.normal(0.0, 1.0, size=(50, 2)), training=True)
        x = rng.normal(size=(5, 2))
        out1 = layer.forward(x, training=False)
        out2 = layer.forward(x, training=False)
        assert np.allclose(out1, out2)

    def test_input_gradient_check(self, rng):
        layer = BatchNorm1d(3)
        x = rng.normal(size=(6, 3))
        grad_out = rng.normal(size=(6, 3))
        layer.forward(x, training=True)
        analytic = layer.backward(grad_out)
        numeric = numerical_grad_wrt_input(layer, x, grad_out)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_gamma_beta_gradient_check(self, rng):
        layer = BatchNorm1d(3)
        x = rng.normal(size=(5, 3))
        grad_out = rng.normal(size=(5, 3))
        layer.forward(x, training=True)
        layer.gamma.zero_grad()
        layer.beta.zero_grad()
        layer.backward(grad_out)
        num_gamma = numerical_grad_wrt_param(layer, layer.gamma, x, grad_out)
        num_beta = numerical_grad_wrt_param(layer, layer.beta, x, grad_out)
        assert np.allclose(layer.gamma.grad, num_gamma, atol=1e-5)
        assert np.allclose(layer.beta.grad, num_beta, atol=1e-5)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(3, momentum=1.0)


class TestLayerFromConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            layer_from_config({"kind": "conv3d"})

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            layer_from_config({})
