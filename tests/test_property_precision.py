"""Property tests for the precision contracts (hypothesis + layer parity).

Two families:

- **Chunk-exactness** — :class:`ZeroPhaseIIRStream` must match the
  monolithic ``filtfilt`` within the documented 1e-9 tolerance for *any*
  tick schedule (fixed ticks of ``w``, ``w/2``, ``w/4`` and ``1`` sample,
  plus hypothesis-generated ragged schedules), and be **bit-identical**
  across different chunkings of the same signal.
- **Float32 verdict parity** — the reduced-precision fast path may not
  flip more than 1e-3 of verdicts (labels or accepts) vs the canonical
  float64 stream, checked at every serving layer: the engine call, a
  mixed-dtype :class:`FleetServer` tick, and a real TCP gateway session
  negotiated via HELLO ``dtype`` meta.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import FleetServer
from repro.preprocessing import ButterworthLowpass
from repro.serving import ModelRegistry
from repro.serving.gateway import GatewayClient, GatewayServer

W = 120  # the default pipeline window length
MAX_FLIP_RATE = 1e-3

finite_signals = st.integers(40, 500).flatmap(
    lambda n: arrays(
        np.float64,
        (n, 2),
        elements=st.floats(
            min_value=-1e3, max_value=1e3,
            allow_nan=False, allow_infinity=False,
        ),
    )
)


def _stream_apply(denoiser, data, sizes):
    """Push ``data`` through a fresh stream in ticks of ``sizes``."""
    stream = denoiser.make_stream()
    pieces, start = [], 0
    for size in sizes:
        if start >= data.shape[0]:
            break
        pieces.append(stream.push(data[start : start + size]))
        start += size
    if start < data.shape[0]:
        pieces.append(stream.push(data[start:]))
    pieces.append(stream.finish())
    return np.concatenate([p for p in pieces if p.size], axis=0)


class TestChunkedButterworthProperties:
    @settings(max_examples=15, deadline=None)
    @given(data=finite_signals, tick=st.sampled_from([W, W // 2, W // 4, 1]))
    def test_fixed_ticks_match_monolithic(self, data, tick):
        """Ticks of w, w/2, w/4 and 1 sample all reproduce ``apply``."""
        denoiser = ButterworthLowpass()
        mono = denoiser.apply(data)
        got = _stream_apply(denoiser, data, [tick] * (data.shape[0] // tick))
        scale = 1.0 + float(np.max(np.abs(data))) if data.size else 1.0
        np.testing.assert_allclose(got, mono, rtol=0.0, atol=1e-9 * scale)

    @settings(max_examples=15, deadline=None)
    @given(
        data=finite_signals,
        sizes=st.lists(st.integers(1, 50), min_size=1, max_size=60),
    )
    def test_ragged_ticks_bit_identical_to_single_push(self, data, sizes):
        """Chunking invariance is exact, not just within tolerance."""
        denoiser = ButterworthLowpass()
        ragged = _stream_apply(denoiser, data, sizes)
        single = _stream_apply(denoiser, data, [data.shape[0]])
        assert np.array_equal(ragged, single)

    @settings(max_examples=10, deadline=None)
    @given(data=finite_signals)
    def test_one_sample_ticks_bit_identical(self, data):
        """The pathological all-1-sample schedule is exact too."""
        denoiser = ButterworthLowpass()
        drip = _stream_apply(denoiser, data, [1] * data.shape[0])
        single = _stream_apply(denoiser, data, [data.shape[0]])
        assert np.array_equal(drip, single)


def _flip_rate(ref_labels, ref_accepted, got_labels, got_accepted):
    flips = int(
        (np.asarray(ref_labels) != np.asarray(got_labels)).sum()
        + (np.asarray(ref_accepted) != np.asarray(got_accepted)).sum()
    )
    return flips / max(1, len(ref_labels))


class TestFloat32FlipRate:
    def test_engine_layer(self, edge, scenario):
        recording = scenario.sensor_device.record("walk", 6.0)
        ref = edge.infer_stream(recording.data, stride=4)
        got = edge.infer_stream(recording.data, stride=4, dtype=np.float32)
        assert len(ref) == len(got) > 100
        rate = _flip_rate(ref.labels, ref.accepted, got.labels, got.accepted)
        assert rate <= MAX_FLIP_RATE

    def test_fleet_layer(self, edge, scenario):
        server = FleetServer(edge.engine)
        server.connect("f64")
        server.connect("f32", dtype=np.float32)
        chunk = scenario.sensor_device.record("walk", 4.0).data
        out = server.step_stream({"f64": chunk, "f32": chunk}, stride=4)
        ref = list(out["f64"]) + list(server.finish_stream("f64"))
        got = list(out["f32"]) + list(server.finish_stream("f32"))
        assert len(ref) == len(got) > 0
        rate = _flip_rate(
            [v.activity for v in ref],
            [v.accepted for v in ref],
            [v.activity for v in got],
            [v.accepted for v in got],
        )
        assert rate <= MAX_FLIP_RATE

    def test_gateway_layer(self, edge, scenario):
        registry = ModelRegistry(default_cohort="a")
        registry.publish("a", edge.engine)
        data = scenario.sensor_device.record("walk", 4.0).data
        chunks = [data[:240], data[240:]]

        async def drive(gateway, session_id, dtype):
            async with GatewayClient(gateway.host, gateway.port) as client:
                await client.connect(session_id, dtype=dtype)
                verdicts = []
                for chunk in chunks:
                    verdicts.extend(await client.send_chunk(chunk))
                verdicts.extend(await client.finish())
                return verdicts

        async def body():
            async with GatewayServer(registry) as gateway:
                ref = await drive(gateway, "s64", None)
                got = await drive(gateway, "s32", "float32")
                return ref, got

        ref, got = asyncio.run(asyncio.wait_for(body(), timeout=60))
        assert len(ref) == len(got) > 0
        rate = _flip_rate(
            [v.activity for v in ref],
            [v.accepted for v in ref],
            [v.activity for v in got],
            [v.accepted for v in got],
        )
        assert rate <= MAX_FLIP_RATE
