"""Unit tests for segmentation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataShapeError
from repro.preprocessing import segment_recording, sliding_windows, window_count
from repro.sensors import SensorDevice


class TestSlidingWindows:
    def test_nonoverlapping_count(self, rng):
        data = rng.normal(size=(360, 4))
        windows = sliding_windows(data, window_len=120)
        assert windows.shape == (3, 120, 4)

    def test_tail_dropped(self, rng):
        data = rng.normal(size=(350, 4))
        assert sliding_windows(data, 120).shape[0] == 2

    def test_window_contents_match_source(self, rng):
        data = rng.normal(size=(240, 2))
        windows = sliding_windows(data, 120)
        assert np.allclose(windows[0], data[:120])
        assert np.allclose(windows[1], data[120:240])

    def test_overlapping_stride(self, rng):
        data = rng.normal(size=(120, 2))
        windows = sliding_windows(data, 60, stride=30)
        assert windows.shape == (3, 60, 2)
        assert np.allclose(windows[1], data[30:90])

    def test_short_input_gives_empty(self, rng):
        windows = sliding_windows(rng.normal(size=(50, 3)), 120)
        assert windows.shape == (0, 120, 3)

    def test_windows_own_their_memory(self, rng):
        data = rng.normal(size=(240, 2))
        windows = sliding_windows(data, 120)
        windows[0, 0, 0] = 999.0
        assert data[0, 0] != 999.0

    def test_1d_input_rejected(self):
        with pytest.raises(DataShapeError):
            sliding_windows(np.zeros(100), 10)

    def test_bad_window_len_rejected(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.zeros((10, 2)), 0)

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.zeros((10, 2)), 5, stride=0)

    def test_exact_fit(self, rng):
        data = rng.normal(size=(120, 2))
        assert sliding_windows(data, 120).shape[0] == 1


class TestSegmentRecording:
    def test_one_second_windows(self):
        rec = SensorDevice(rng=1).record("walk", 3.0)
        windows = segment_recording(rec, window_s=1.0)
        assert windows.shape == (3, 120, 22)

    def test_half_overlap(self):
        rec = SensorDevice(rng=1).record("walk", 2.0)
        windows = segment_recording(rec, window_s=1.0, overlap=0.5)
        assert windows.shape[0] == 3  # strides of 60 over 240 samples

    def test_invalid_overlap_rejected(self):
        rec = SensorDevice(rng=1).record("walk", 1.0)
        with pytest.raises(ConfigurationError):
            segment_recording(rec, overlap=1.0)

    def test_invalid_window_rejected(self):
        rec = SensorDevice(rng=1).record("walk", 1.0)
        with pytest.raises(ConfigurationError):
            segment_recording(rec, window_s=0.0)


class TestWindowCount:
    def test_matches_sliding_windows(self, rng):
        for n, w, s in [(360, 120, 120), (350, 120, 120), (120, 60, 30), (59, 60, 60)]:
            data = rng.normal(size=(n, 2))
            assert window_count(n, w, s) == sliding_windows(data, w, s).shape[0]

    def test_default_stride(self):
        assert window_count(240, 120) == 2
