"""Tests for async fan-out fleet serving (AsyncFleetServer + worker pool).

The acceptance bar: ``await step_stream``/``await step`` produce verdicts
identical (1e-9) to the synchronous ``FleetServer`` at any stride/chunking
— while per-model batched calls run on worker threads/processes — and the
concurrency semantics hold: per-session ordering, bounded in-flight ticks
(typed backpressure error, nothing dropped), hot-swap ``publish`` racing
an in-flight tick leaves open streams pinned, and one model failing never
loses another cohort's windows.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.core import FleetServer
from repro.eval import (
    run_cohort_stream_protocol,
    run_cohort_stream_protocol_async,
)
from repro.exceptions import (
    BackpressureError,
    ConfigurationError,
    UnknownCohortError,
)
from repro.serving import (
    AsyncFleetServer,
    EngineHandle,
    EngineWorkerPool,
    ModelRegistry,
    backbone_fingerprint_of,
)

PARITY = dict(rtol=0.0, atol=1e-9)
WINDOW = 120  # the default pipeline window length


@pytest.fixture
def engines(scenario):
    """Two distinct engines: the base package and a 6-class variant."""
    edge_a = scenario.fresh_edge(rng=1)
    edge_b = scenario.fresh_edge(rng=2)
    edge_b.learn_activity(
        "gesture_hi", scenario.sensor_device.record("gesture_hi", 20.0)
    )
    return edge_a.engine, edge_b.engine


@pytest.fixture
def registry(engines):
    engine_a, engine_b = engines
    reg = ModelRegistry(default_cohort="a")
    reg.publish("a", engine_a)
    reg.publish("b", engine_b)
    return reg


def drive(coro):
    """Run one async test body with a safety timeout."""
    async def bounded():
        return await asyncio.wait_for(coro, timeout=60)

    return asyncio.run(bounded())


def _verdict_tuples(verdicts):
    return [
        (v.activity, v.display, round(v.confidence, 12), v.accepted)
        for v in verdicts
    ]


def _blocking(monkeypatch, engine, release: threading.Event, calls=None):
    """Patch ``engine.infer_features`` to wait for ``release`` first."""
    original = engine.infer_features

    def blocked(features):
        if calls is not None:
            calls.append(int(features.shape[0]))
        assert release.wait(timeout=30), "release event never set"
        return original(features)

    monkeypatch.setattr(engine, "infer_features", blocked)


class TestVerdictParity:
    @pytest.mark.parametrize("stride_map", [None, {"a": WINDOW, "b": 60}])
    def test_step_stream_parity_with_sync_server_ragged_ticks(
        self, registry, engines, scenario, stride_map
    ):
        """Async == sync at strides {w, w/2}, ragged 1-sample ticks incl."""
        data = scenario.sensor_device.record("walk", 8.0).data
        session_ids = ["a1", "a2", "b1"]
        cohorts = {"a1": "a", "a2": "a", "b1": "b"}
        # ragged tick sizes, including 1-sample ticks straddling windows
        sizes = [1, 119, 1, 179, 240, 60, 1, 1, 358]

        def ticks():
            start = 0
            for size in sizes:
                yield data[start : start + size]
                start += size

        sync_server = FleetServer(registry)
        for sid in session_ids:
            sync_server.connect(sid, cohort=cohorts[sid])
        sync_got = {sid: [] for sid in session_ids}
        for chunk in ticks():
            tick = sync_server.step_stream(
                {sid: chunk for sid in session_ids}, stride=stride_map
            )
            for sid, verdicts in tick.items():
                sync_got[sid].extend(verdicts)
        for sid in session_ids:
            sync_got[sid].extend(sync_server.finish_stream(sid))

        async def run():
            got = {sid: [] for sid in session_ids}
            async with AsyncFleetServer(registry, workers=2) as server:
                for sid in session_ids:
                    server.connect(sid, cohort=cohorts[sid])
                for chunk in ticks():
                    tick = await server.step_stream(
                        {sid: chunk for sid in session_ids},
                        stride=stride_map,
                    )
                    for sid, verdicts in tick.items():
                        got[sid].extend(verdicts)
                for sid in session_ids:
                    got[sid].extend(await server.finish_stream(sid))
                return got, server.summary(), server.cohort_summary()

        async_got, summary, cohort_summary = drive(run())
        for sid in session_ids:
            assert _verdict_tuples(async_got[sid]) == _verdict_tuples(
                sync_got[sid]
            )
            np.testing.assert_allclose(
                [v.confidence for v in async_got[sid]],
                [v.confidence for v in sync_got[sid]],
                **PARITY,
            )
        sync_summary = sync_server.summary()
        assert summary["windows_served"] == sync_summary["windows_served"]
        assert summary["ticks"] == sync_summary["ticks"]
        assert (
            cohort_summary["a"]["windows_served"]
            == sync_server.cohort_summary()["a"]["windows_served"]
        )

    def test_step_parity_with_sync_server(self, registry, scenario):
        window = scenario.sensor_device.record("walk", 1.0).data[:WINDOW]
        sync_server = FleetServer(registry)
        sync_server.connect_many(["a1", "a2"], cohort="a")
        sync_server.connect("b1", cohort="b")
        sync_tick = sync_server.step(
            {"a1": window, "a2": window, "b1": window}
        )

        async def run():
            async with AsyncFleetServer(registry, workers=2) as server:
                server.connect_many(["a1", "a2"], cohort="a")
                server.connect("b1", cohort="b")
                return await server.step(
                    {"a1": window, "a2": window, "b1": window}
                )

        async_tick = drive(run())
        assert set(async_tick) == set(sync_tick)
        for sid, verdict in async_tick.items():
            assert verdict.activity == sync_tick[sid].activity
            assert verdict.accepted == sync_tick[sid].accepted
            assert verdict.confidence == pytest.approx(
                sync_tick[sid].confidence, abs=1e-9
            )

    def test_process_mode_parity(self, registry, scenario):
        """Process shards serve replicas with identical verdicts."""
        data = scenario.sensor_device.record("walk", 3.0).data
        sync_server = FleetServer(registry)
        sync_server.connect("a1", cohort="a")
        sync_server.connect("b1", cohort="b")
        sync_tick = sync_server.step_stream({"a1": data, "b1": data})

        async def run():
            async with AsyncFleetServer(
                registry, workers=2, mode="process"
            ) as server:
                server.connect("a1", cohort="a")
                server.connect("b1", cohort="b")
                return await server.step_stream({"a1": data, "b1": data})

        async_tick = drive(run())
        for sid in ("a1", "b1"):
            assert _verdict_tuples(async_tick[sid]) == _verdict_tuples(
                sync_tick[sid]
            )


class TestBackpressure:
    def test_saturation_raises_typed_error_and_drops_nothing(
        self, registry, engines, scenario, monkeypatch
    ):
        engine_a, _ = engines
        data = scenario.sensor_device.record("walk", 4.0).data
        release = threading.Event()
        _blocking(monkeypatch, engine_a, release)

        async def run():
            async with AsyncFleetServer(
                registry, workers=1, max_inflight=1
            ) as server:
                server.connect("s1", cohort="a")
                server.connect("s2", cohort="a")
                inflight = asyncio.create_task(
                    server.step_stream({"s1": data[:240]})
                )
                await asyncio.sleep(0.05)  # let it reach the worker await
                assert server.inflight == 1
                with pytest.raises(BackpressureError, match="no chunks"):
                    await server.step_stream({"s2": data[:240]})
                # the refused tick consumed nothing
                s2 = server.session("s2")
                assert s2.stream is None and s2.windows_seen == 0
                release.set()
                first = await inflight
                assert server.inflight == 0
                # the slot drained: the retried chunk now serves fully
                retried = await server.step_stream({"s2": data[:240]})
                return first, retried

        first, retried = drive(run())
        assert len(first["s1"]) == 2
        # same chunk, same model: the retried session saw every window
        assert _verdict_tuples(retried["s2"]) == _verdict_tuples(first["s1"])

    def test_finish_stream_waits_for_inflight_tick(
        self, registry, engines, scenario, monkeypatch
    ):
        """A flush racing an in-flight tick serializes on the session."""
        engine_a, _ = engines
        data = scenario.sensor_device.record("walk", 4.0).data
        release = threading.Event()

        async def run():
            async with AsyncFleetServer(
                registry, workers=2, max_inflight=2
            ) as server:
                server.connect("s", cohort="a")
                _blocking(monkeypatch, engine_a, release)
                tick = asyncio.create_task(
                    server.step_stream({"s": data[:300]})
                )
                await asyncio.sleep(0.05)
                flush = asyncio.create_task(server.finish_stream("s"))
                await asyncio.sleep(0.05)
                assert not flush.done()  # blocked on the session lock
                release.set()
                tick_verdicts = await tick
                await flush
                assert server.session("s").stream is None
                return tick_verdicts

        tick_verdicts = drive(run())
        assert len(tick_verdicts["s"]) == 2  # 300 samples -> 2 windows

    def test_bad_configuration(self, registry):
        with pytest.raises(ConfigurationError, match="max_inflight"):
            AsyncFleetServer(registry, max_inflight=0)
        with pytest.raises(ConfigurationError, match="workers"):
            EngineWorkerPool(workers=0)
        with pytest.raises(ConfigurationError, match="mode"):
            EngineWorkerPool(mode="fiber")


class TestOrdering:
    def test_same_session_ticks_serialize_in_arrival_order(
        self, registry, engines, scenario, monkeypatch
    ):
        """Tick 2 of a session cannot overtake tick 1 mid-await."""
        engine_a, _ = engines
        data = scenario.sensor_device.record("walk", 4.0).data
        release = threading.Event()
        calls = []
        # Block only the FIRST engine call, so if tick 2 could run it
        # would finish well before tick 1.
        original = engine_a.infer_features

        def first_blocked(features):
            calls.append(int(features.shape[0]))
            if len(calls) == 1:
                assert release.wait(timeout=30)
            return original(features)

        monkeypatch.setattr(engine_a, "infer_features", first_blocked)

        async def run():
            async with AsyncFleetServer(
                registry, workers=2, max_inflight=2
            ) as server:
                server.connect("s", cohort="a")
                t1 = asyncio.create_task(server.step_stream({"s": data[:300]}))
                await asyncio.sleep(0.05)
                t2 = asyncio.create_task(
                    server.step_stream({"s": data[300:600]})
                )
                await asyncio.sleep(0.05)
                assert calls == [2]  # tick 2 still queued on the lock
                release.set()
                v1 = await t1
                v2 = await t2
                return v1["s"] + v2["s"]

        got = drive(run())
        ref = engines[0].infer_stream(data[:600])
        assert [v.activity for v in got] == ref.names
        np.testing.assert_allclose(
            [v.confidence for v in got], ref.confidences, **PARITY
        )


class TestHotSwapRace:
    def test_publish_racing_inflight_tick_keeps_stream_pinned(
        self, engines, scenario, monkeypatch
    ):
        engine_v1, engine_v2 = engines
        registry = ModelRegistry(default_cohort="a")
        registry.publish("a", engine_v1)
        data = scenario.sensor_device.record("walk", 6.0).data
        release = threading.Event()

        async def run():
            async with AsyncFleetServer(registry, workers=2) as server:
                session = server.connect("s")
                await server.step_stream({"s": data[:200]})
                _blocking(monkeypatch, engine_v1, release)
                inflight = asyncio.create_task(
                    server.step_stream({"s": data[200:440]})
                )
                await asyncio.sleep(0.05)
                registry.publish("a", engine_v2)  # racing hot-swap
                release.set()
                got = await inflight
                assert session.stream.engine is engine_v1  # still pinned
                monkeypatch.undo()
                more = await server.step_stream({"s": data[440:600]})
                await server.finish_stream("s")
                # a fresh stream binds the newly published engine
                await server.step_stream({"s": data[:240]})
                assert session.stream.engine is engine_v2
                return got["s"] + more["s"]

        pinned_verdicts = drive(run())
        # everything served mid-race came from the pinned v1 engine
        ref = engine_v1.infer_stream(data[:600])
        assert [v.activity for v in pinned_verdicts] == ref.names[1:]

    def test_windowed_step_resolves_latest_publication(
        self, engines, scenario
    ):
        engine_v1, engine_v2 = engines
        registry = ModelRegistry(default_cohort="a")
        registry.publish("a", engine_v1)
        window = scenario.sensor_device.record("walk", 1.0).data[:WINDOW]

        async def run():
            async with AsyncFleetServer(registry, workers=2) as server:
                server.connect("s")
                await server.step({"s": window})
                registry.publish("a", engine_v2)
                return await server.step({"s": window})

        verdict = drive(run())["s"]
        ref = engine_v2.infer_windows(window[None, :, :])
        assert verdict.activity == ref.names[0]


class TestFailureIsolation:
    def test_failing_model_keeps_other_cohorts_and_accounting(
        self, registry, engines, scenario, monkeypatch
    ):
        engine_a, engine_b = engines
        data = scenario.sensor_device.record("walk", 4.0).data

        def boom(features):
            raise RuntimeError("model fell over")

        async def run():
            async with AsyncFleetServer(registry, workers=2) as server:
                server.connect("a1", cohort="a")
                server.connect("b1", cohort="b")
                await server.step_stream({"a1": data[:200], "b1": data[:200]})
                monkeypatch.setattr(engine_b, "infer_features", boom)
                with pytest.raises(RuntimeError, match="fell over"):
                    await server.step_stream(
                        {"a1": data[200:360], "b1": data[200:360]}
                    )
                # cohort a's verdicts were folded before the re-raise
                a1 = server.session("a1")
                assert a1.windows_seen == 3
                assert server.cohort_summary()["a"]["windows_served"] == 3.0
                assert server.ticks == 2  # the failing tick still served a
                monkeypatch.undo()
                server.session("b1").reset()
                more = await server.step_stream(
                    {"a1": data[360:480], "b1": data[:240]}
                )
                assert len(more["a1"]) == 1 and len(more["b1"]) == 2
                return a1.windows_seen

        assert drive(run()) == 4

    def test_all_models_failing_leaves_tick_counters_untouched(
        self, registry, engines, scenario, monkeypatch
    ):
        engine_a, engine_b = engines
        data = scenario.sensor_device.record("walk", 2.0).data

        def boom(features):
            raise RuntimeError("model fell over")

        async def run():
            async with AsyncFleetServer(registry, workers=2) as server:
                server.connect("a1", cohort="a")
                server.connect("b1", cohort="b")
                monkeypatch.setattr(engine_a, "infer_features", boom)
                monkeypatch.setattr(engine_b, "infer_features", boom)
                with pytest.raises(RuntimeError):
                    await server.step_stream({"a1": data, "b1": data})
                assert server.ticks == 0
                assert server.serve_ms == 0.0
                assert server.summary()["windows_served"] == 0.0
                assert server.inflight == 0  # the slot was released
                return True

        assert drive(run())


class TestDisconnectSafety:
    def test_disconnect_refuses_while_tick_in_flight(
        self, registry, engines, scenario, monkeypatch
    ):
        """Yanking a session from under an awaiting tick is a typed error."""
        engine_a, _ = engines
        data = scenario.sensor_device.record("walk", 3.0).data
        release = threading.Event()
        _blocking(monkeypatch, engine_a, release)

        async def run():
            async with AsyncFleetServer(registry, workers=2) as server:
                server.connect("s", cohort="a")
                tick = asyncio.create_task(server.step_stream({"s": data}))
                await asyncio.sleep(0.05)
                with pytest.raises(ConfigurationError, match="in flight"):
                    server.disconnect("s")
                release.set()
                verdicts = await tick
                server.disconnect("s")  # fine once the tick drained
                assert server.n_sessions == 0
                return verdicts

        assert len(drive(run())["s"]) == 3

    def test_unknown_session_never_mints_a_lock(self, registry, scenario):
        """A refused tick naming a bad id leaks no per-session state."""
        chunk = scenario.sensor_device.record("walk", 1.0).data

        async def run():
            async with AsyncFleetServer(registry, workers=1) as server:
                with pytest.raises(ConfigurationError, match="not connected"):
                    await server.step_stream({"ghost": chunk})
                with pytest.raises(ConfigurationError, match="not connected"):
                    await server.step({"ghost": chunk[:WINDOW]})
                return len(server._session_locks)

        assert drive(run()) == 0


class TestWorkerPool:
    def test_process_shard_reships_evicted_replicas(
        self, scenario, engines
    ):
        """More distinct handles than the worker cache holds still serve.

        The parent mirrors the worker-side FIFO eviction, so a handle
        whose replica was evicted is re-shipped on next use instead of
        failing with a missing-replica error forever.
        """
        from repro.serving.async_fleet import _WORKER_CACHE_LIMIT

        engine_a, _ = engines
        data = scenario.sensor_device.record("walk", 2.0).data
        features = engine_a.pipeline.process_stream(data)
        ref = engine_a.infer_features(features).names
        handles = [
            EngineHandle("a", version, engine_a)
            for version in range(_WORKER_CACHE_LIMIT + 2)
        ]
        with EngineWorkerPool(workers=1, mode="process") as pool:
            first = handles[0]
            assert pool.submit(
                first, "infer_features", features
            ).result(30).names == ref
            for handle in handles[1:]:  # overflow the replica cache
                pool.submit(handle, "infer_features", features).result(30)
            # the first handle's replica was evicted; it must re-ship
            assert pool.submit(
                first, "infer_features", features
            ).result(30).names == ref
    def test_sticky_round_robin_sharding(self, engines):
        engine_a, engine_b = engines
        pool = EngineWorkerPool(workers=2)
        try:
            handle_a = EngineHandle("a", 1, engine_a)
            handle_b = EngineHandle("b", 1, engine_b)
            assert pool.shard_of(handle_a) == 0
            assert pool.shard_of(handle_b) == 1
            # sticky: repeat lookups never migrate a model
            assert pool.shard_of(handle_a) == 0
            # a hot-swapped version is a new key -> next shard round-robin
            handle_a2 = EngineHandle("a", 2, engine_b)
            assert pool.shard_of(handle_a2) == 0
        finally:
            pool.close()

    def test_submit_runs_engine_methods(self, engines, scenario):
        engine_a, _ = engines
        data = scenario.sensor_device.record("walk", 2.0).data
        features = engine_a.pipeline.process_stream(data)
        with EngineWorkerPool(workers=2) as pool:
            handle = EngineHandle("a", 1, engine_a)
            batch = pool.submit(handle, "infer_features", features).result(30)
        ref = engine_a.infer_features(features)
        assert batch.names == ref.names
        with pytest.raises(ConfigurationError, match="closed"):
            pool.submit(handle, "infer_features", features)

    def test_shared_pool_is_not_closed_by_server(self, registry):
        pool = EngineWorkerPool(workers=1)
        try:
            async def run():
                async with AsyncFleetServer(registry, pool=pool) as server:
                    assert server.pool is pool
                return True

            assert drive(run())
            assert not pool.closed  # caller keeps ownership
        finally:
            pool.close()

    def test_registry_handles_track_publications(self, registry, engines):
        engine_a, engine_b = engines
        handle = registry.engine_handle_for("a")
        assert handle.engine is engine_a
        assert handle.cohort == "a" and handle.version == 1
        registry.publish("a", engine_b)
        swapped = registry.engine_handle_for("a")
        assert swapped.version == 2 and swapped.engine is engine_b
        assert swapped.key != handle.key
        with pytest.raises(UnknownCohortError):
            registry.engine_handle_for("ghost")


class TestBackboneFusionAsync:
    """Thread-mode fan-out fuses same-backbone cohorts into one pass."""

    @pytest.fixture
    def shared_engines(self, scenario):
        """Two cohort heads over byte-identical backbone clones."""
        engine_x = scenario.fresh_edge(rng=1).engine
        engine_y = scenario.fresh_edge(rng=3).engine
        assert backbone_fingerprint_of(engine_x) == backbone_fingerprint_of(
            engine_y
        )
        return engine_x, engine_y

    @pytest.fixture
    def shared_registry(self, shared_engines):
        engine_x, engine_y = shared_engines
        reg = ModelRegistry(default_cohort="x")
        reg.publish("x", engine_x)
        reg.publish("y", engine_y)
        return reg

    def test_thread_mode_fuses_one_embedding_pass_and_parity(
        self, shared_registry, shared_engines, scenario, monkeypatch
    ):
        engine_x, engine_y = shared_engines
        data = scenario.sensor_device.record("walk", 3.0).data
        refs = {"sx": engine_x.infer_stream(data),
                "sy": engine_y.infer_stream(data)}
        embeds = []
        features_calls = []
        for engine in (engine_x, engine_y):
            original_embed = engine.embedder.embed
            original_features = engine.infer_features

            def counted_embed(features, _original=original_embed):
                embeds.append(int(features.shape[0]))
                return _original(features)

            def counted_features(features, _original=original_features):
                features_calls.append(int(features.shape[0]))
                return _original(features)

            monkeypatch.setattr(engine.embedder, "embed", counted_embed)
            monkeypatch.setattr(engine, "infer_features", counted_features)

        async def run():
            async with AsyncFleetServer(shared_registry, workers=2) as server:
                server.connect("sx", cohort="x")
                server.connect("sy", cohort="y")
                return await server.step_stream({"sx": data, "sy": data})

        got = drive(run())
        assert len(embeds) == 1  # one fused pass across both cohorts
        assert features_calls == []  # the per-model path was skipped
        for sid in ("sx", "sy"):
            assert [v.activity for v in got[sid]] == refs[sid].names
            np.testing.assert_allclose(
                [v.confidence for v in got[sid]],
                refs[sid].confidences,
                **PARITY,
            )

    def test_process_mode_falls_back_to_per_model_calls(
        self, shared_registry, shared_engines, scenario
    ):
        """Process shards keep the ship-once replica cache: no fusion."""
        engine_x, engine_y = shared_engines
        data = scenario.sensor_device.record("walk", 3.0).data

        async def run():
            async with AsyncFleetServer(
                shared_registry, workers=2, mode="process"
            ) as server:
                assert not server._fusion_enabled()
                server.connect("sx", cohort="x")
                server.connect("sy", cohort="y")
                return await server.step_stream({"sx": data, "sy": data})

        got = drive(run())
        for sid, engine in (("sx", engine_x), ("sy", engine_y)):
            ref = engine.infer_stream(data)
            assert [v.activity for v in got[sid]] == ref.names

    def test_hot_swap_head_does_not_rebind_sibling_streams(
        self, shared_registry, shared_engines, scenario
    ):
        """A new head for one cohort leaves the group's siblings pinned."""
        engine_x, engine_y = shared_engines
        new_y = scenario.fresh_edge(rng=4).engine
        data = scenario.sensor_device.record("walk", 4.0).data

        async def run():
            got_x = []
            async with AsyncFleetServer(shared_registry, workers=2) as server:
                server.connect("sx", cohort="x")
                server.connect("sy", cohort="y")
                first = await server.step_stream(
                    {"sx": data[:200], "sy": data[:200]}
                )
                got_x.extend(first["sx"])
                shared_registry.publish("y", new_y)  # same backbone group
                assert len(shared_registry.backbone_groups()) == 1
                more = await server.step_stream(
                    {"sx": data[200:440], "sy": data[200:440]}
                )
                got_x.extend(more["sx"])
                assert server.session("sx").stream.engine is engine_x
                assert server.session("sy").stream.engine is engine_y
                await server.finish_stream("sy")
                await server.step_stream({"sy": data[:240]})
                assert server.session("sy").stream.engine is new_y
            return got_x

        got_x = drive(run())
        ref = engine_x.infer_stream(data[:440])
        assert [v.activity for v in got_x] == ref.names
        np.testing.assert_allclose(
            [v.confidence for v in got_x], ref.confidences, **PARITY
        )


class TestAsyncEvalDriver:
    def test_matches_serial_cohort_protocol_exactly(
        self, registry, scenario
    ):
        segments = {
            "a": [
                ("walk", scenario.sensor_device.record("walk", 3.0).data),
                ("run", scenario.sensor_device.record("run", 3.0).data),
            ],
            "b": [
                (
                    "gesture_hi",
                    scenario.sensor_device.record("gesture_hi", 3.0).data,
                ),
            ],
        }
        serial = run_cohort_stream_protocol(registry, segments, chunk_len=100)
        parallel = drive(
            run_cohort_stream_protocol_async(
                registry, segments, chunk_len=100, workers=2
            )
        )
        assert parallel.combined.n_windows == serial.combined.n_windows
        assert (
            parallel.combined.overall_accuracy
            == serial.combined.overall_accuracy
        )
        assert (
            parallel.combined.per_activity_windows
            == serial.combined.per_activity_windows
        )
        for cohort in segments:
            got, ref = parallel.cohort(cohort), serial.cohort(cohort)
            assert got.n_windows == ref.n_windows
            assert got.per_activity_accuracy == ref.per_activity_accuracy
            assert got.mean_confidence == pytest.approx(
                ref.mean_confidence, abs=1e-12
            )

    def test_error_paths_match_serial_protocol(self, registry):
        with pytest.raises(ConfigurationError):
            drive(run_cohort_stream_protocol_async(registry, {}))
        with pytest.raises(UnknownCohortError):
            drive(
                run_cohort_stream_protocol_async(
                    registry, {"ghost": [("walk", np.zeros((240, 22)))]}
                )
            )
        with pytest.raises(ConfigurationError, match="no segments"):
            drive(run_cohort_stream_protocol_async(registry, {"a": []}))
