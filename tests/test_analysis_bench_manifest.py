"""Bench/gate manifest cross-check against synthetic repository layouts."""

import textwrap

from repro.analysis import BenchManifestChecker, lint_paths
from repro.analysis.bench_manifest import read_gate_rows

MANIFEST_SOURCE = textwrap.dedent(
    '''\
    """Synthetic gate manifest for the cross-check tests."""

    from dataclasses import dataclass


    @dataclass(frozen=True)
    class BenchGate:
        name: str
        file: str
        smoke_budget: int
        claim: str


    GATES = [
        BenchGate(
            name="alpha",
            file="bench_alpha.py",
            smoke_budget=10,
            claim="alpha stays fast",
        ),
        BenchGate(
            name="ghost",
            file="bench_ghost.py",
            smoke_budget=10,
            claim="points at nothing",
        ),
    ]
    '''
)


def build_repo(tmp_path):
    """alpha is healthy; ghost dangles; orphan/stale are ungated."""
    tools = tmp_path / "tools"
    tools.mkdir()
    (tools / "run_bench_gates.py").write_text(MANIFEST_SOURCE)
    bench = tmp_path / "benchmarks"
    bench.mkdir()
    (bench / "bench_alpha.py").write_text("def main():\n    return 0\n")
    (bench / "bench_orphan.py").write_text("def main():\n    return 0\n")
    (tmp_path / "BENCH_alpha.json").write_text("{}")
    (tmp_path / "BENCH_stale.json").write_text("{}")
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "executed.md").write_text(
        "# Executed\n\n```python\nassert True\n```\n"
    )
    (docs / "prose_only.md").write_text("# Prose\n\nNo examples here.\n")
    return tmp_path


def check(root):
    return sorted(
        BenchManifestChecker().check_repo(root),
        key=lambda v: (v.path, v.line, v.message),
    )


class TestReadGateRows:
    def test_rows_parsed_statically(self, tmp_path):
        root = build_repo(tmp_path)
        rows = read_gate_rows(root / "tools" / "run_bench_gates.py")
        assert [(name, file) for name, file, _ in rows] == [
            ("alpha", "bench_alpha.py"),
            ("ghost", "bench_ghost.py"),
        ]
        assert all(line > 0 for _, _, line in rows)


class TestBenchManifestChecker:
    def test_dangling_gate_row_is_two_errors(self, tmp_path):
        """ghost: benchmark file missing AND baseline missing."""
        violations = check(build_repo(tmp_path))
        ghost = [v for v in violations if "'ghost'" in v.message]
        assert len(ghost) == 2
        assert all(v.rule == "bench-gate" for v in ghost)
        assert all(v.severity == "error" for v in ghost)
        assert all(v.path == "tools/run_bench_gates.py" for v in ghost)

    def test_ungated_benchmark_and_stale_baseline_warn(self, tmp_path):
        violations = check(build_repo(tmp_path))
        warnings = [v for v in violations if v.severity == "warning"]
        assert {(v.rule, v.path) for v in warnings} == {
            ("bench-ungated", "benchmarks/bench_orphan.py"),
            ("bench-ungated", "BENCH_stale.json"),
            ("docs-uncovered", "docs/prose_only.md"),
        }

    def test_fence_free_docs_page_warns(self, tmp_path):
        violations = check(build_repo(tmp_path))
        uncovered = [v for v in violations if v.rule == "docs-uncovered"]
        assert [v.path for v in uncovered] == ["docs/prose_only.md"]
        assert all(v.severity == "warning" for v in uncovered)
        assert "run_doc_examples" in uncovered[0].message

    def test_docs_page_with_fence_is_silent(self, tmp_path):
        violations = check(build_repo(tmp_path))
        assert not any("executed.md" in v.path for v in violations)

    def test_healthy_gate_is_silent(self, tmp_path):
        violations = check(build_repo(tmp_path))
        assert not any("'alpha'" in v.message for v in violations)

    def test_missing_baseline_message_says_how_to_record(self, tmp_path):
        violations = check(build_repo(tmp_path))
        baseline_errors = [
            v for v in violations if "no recorded baseline" in v.message
        ]
        assert len(baseline_errors) == 1
        assert "--out BENCH_ghost.json" in baseline_errors[0].message

    def test_non_repo_layout_yields_nothing(self, tmp_path):
        assert check(tmp_path) == []

    def test_file_level_pragma_excuses_ungated_benchmark(self, tmp_path):
        """lint_paths lazily loads the named file's pragmas."""
        root = build_repo(tmp_path)
        (root / "benchmarks" / "bench_orphan.py").write_text(
            "# reprolint: disable=bench-ungated — exploratory probe, "
            "deliberately ungated\n"
            "def main():\n    return 0\n"
        )
        report = lint_paths(
            [root / "benchmarks" / "bench_alpha.py"],
            checkers=[],
            root=root,
            repo_checkers=[BenchManifestChecker()],
            strict=True,
        )
        suppressed_paths = [v.path for v, _ in report.suppressed]
        assert "benchmarks/bench_orphan.py" in suppressed_paths
        assert not any(
            v.path == "benchmarks/bench_orphan.py" for v in report.violations
        )
