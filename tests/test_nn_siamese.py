"""Unit tests for pair sampling, the Siamese embedder and its trainer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataShapeError, NotFittedError
from repro.nn import (
    SiameseEmbedder,
    SiameseTrainer,
    TrainConfig,
    all_pairs,
    build_mlp,
    sample_pairs,
)


@pytest.fixture
def labels():
    return np.array([0, 0, 0, 1, 1, 2, 2, 2, 2])


class TestSamplePairs:
    def test_balanced_fractions(self, labels, rng):
        ia, ib, same = sample_pairs(labels, 200, rng=rng)
        assert same.mean() == pytest.approx(0.5, abs=0.05)

    def test_positive_pairs_share_class(self, labels, rng):
        ia, ib, same = sample_pairs(labels, 100, rng=rng)
        assert np.all(labels[ia[same]] == labels[ib[same]])

    def test_negative_pairs_differ(self, labels, rng):
        ia, ib, same = sample_pairs(labels, 100, rng=rng)
        assert np.all(labels[ia[~same]] != labels[ib[~same]])

    def test_positive_pairs_are_distinct_samples(self, labels, rng):
        ia, ib, same = sample_pairs(labels, 100, rng=rng)
        assert np.all(ia[same] != ib[same])

    def test_rare_class_is_represented(self, rng):
        # Class 1 has only 2 of 102 samples; uniform-over-classes positives
        # must still include it.
        labels = np.array([0] * 100 + [1] * 2)
        ia, ib, same = sample_pairs(labels, 400, rng=rng)
        positive_classes = labels[ia[same]]
        assert (positive_classes == 1).sum() > 50

    def test_single_class_all_positive(self, rng):
        ia, ib, same = sample_pairs(np.zeros(5, dtype=int), 20, rng=rng)
        assert np.all(same)

    def test_singleton_classes_all_negative(self, rng):
        ia, ib, same = sample_pairs(np.array([0, 1, 2]), 20, rng=rng)
        assert not np.any(same)

    def test_single_sample_rejected(self, rng):
        with pytest.raises(DataShapeError):
            sample_pairs(np.array([0]), 5, rng=rng)

    def test_bad_n_pairs_rejected(self, labels):
        with pytest.raises(ConfigurationError):
            sample_pairs(labels, 0)

    def test_bad_fraction_rejected(self, labels):
        with pytest.raises(ConfigurationError):
            sample_pairs(labels, 10, positive_fraction=1.5)

    def test_deterministic_given_seed(self, labels):
        a = sample_pairs(labels, 50, rng=3)
        b = sample_pairs(labels, 50, rng=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestAllPairs:
    def test_count(self):
        ia, ib, same = all_pairs(np.array([0, 0, 1]))
        assert len(ia) == 3

    def test_same_flags(self):
        ia, ib, same = all_pairs(np.array([0, 0, 1]))
        lookup = {(int(a), int(b)): bool(s) for a, b, s in zip(ia, ib, same)}
        assert lookup[(0, 1)] is True
        assert lookup[(0, 2)] is False


class TestSiameseEmbedder:
    def test_dims_inferred(self, rng):
        net = build_mlp(10, hidden_dims=(8,), output_dim=4, rng=rng)
        emb = SiameseEmbedder(net)
        assert emb.input_dim == 10
        assert emb.embedding_dim == 4

    def test_embed_shape(self, rng):
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=rng))
        out = emb.embed(rng.normal(size=(7, 6)))
        assert out.shape == (7, 3)

    def test_embed_one(self, rng):
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=rng))
        x = rng.normal(size=6)
        single = emb.embed_one(x)
        assert single.shape == (3,)
        assert np.allclose(single, emb.embed(x[None, :])[0])

    def test_embed_wrong_width_rejected(self, rng):
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=rng))
        with pytest.raises(DataShapeError):
            emb.embed(rng.normal(size=(2, 5)))

    def test_clone_frozen_while_original_trains(self, rng):
        emb = SiameseEmbedder(build_mlp(4, hidden_dims=(6,), output_dim=2, rng=rng))
        frozen = emb.clone()
        x = rng.normal(size=(3, 4))
        before = frozen.embed(x)
        emb.network.layers[0].weight.data += 1.0
        assert np.allclose(frozen.embed(x), before)
        assert not np.allclose(emb.embed(x), before)


def two_blob_data(rng, n_per=20, d=6, sep=4.0):
    """Two well-separated Gaussian blobs."""
    a = rng.normal(size=(n_per, d))
    b = rng.normal(size=(n_per, d)) + sep
    X = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n_per, dtype=int), np.ones(n_per, dtype=int)])
    return X, y


class TestSiameseTrainer:
    def test_loss_decreases(self, rng):
        X, y = two_blob_data(rng)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(16,), output_dim=4, rng=1))
        history = SiameseTrainer(
            TrainConfig(epochs=15, batch_pairs=32, lr=1e-3), rng=2
        ).train(emb, X, y)
        assert history.n_epochs == 15
        assert history.total[-1] < history.total[0]

    def test_embedding_space_separates_classes(self, rng):
        X, y = two_blob_data(rng)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(16,), output_dim=4, rng=1))
        SiameseTrainer(TrainConfig(epochs=20, batch_pairs=32, lr=1e-3), rng=2).train(
            emb, X, y
        )
        Z = emb.embed(X)
        center0, center1 = Z[y == 0].mean(0), Z[y == 1].mean(0)
        within = np.linalg.norm(Z[y == 0] - center0, axis=1).mean()
        between = np.linalg.norm(center0 - center1)
        assert between > 2.0 * within

    def test_distillation_keeps_student_near_teacher(self, rng):
        X, y = two_blob_data(rng)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(16,), output_dim=4, rng=1))
        SiameseTrainer(TrainConfig(epochs=10, batch_pairs=32), rng=2).train(emb, X, y)
        teacher = emb.clone()

        anchored = emb.clone()
        free = emb.clone()
        cfg_anchored = TrainConfig(epochs=10, batch_pairs=32, lr=1e-3,
                                   distill_weight=50.0)
        cfg_free = TrainConfig(epochs=10, batch_pairs=32, lr=1e-3,
                               distill_weight=0.0)
        SiameseTrainer(cfg_anchored, rng=3).train(anchored, X, y, teacher=teacher)
        SiameseTrainer(cfg_free, rng=3).train(free, X, y, teacher=teacher)

        drift_anchored = np.abs(anchored.embed(X) - teacher.embed(X)).mean()
        drift_free = np.abs(free.embed(X) - teacher.embed(X)).mean()
        assert drift_anchored < drift_free

    def test_distillation_history_recorded(self, rng):
        X, y = two_blob_data(rng, n_per=10)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=1))
        teacher = emb.clone()
        history = SiameseTrainer(
            TrainConfig(epochs=3, batch_pairs=16, distill_weight=1.0), rng=2
        ).train(emb, X, y, teacher=teacher)
        assert len(history.distillation) == 3
        assert all(v >= 0.0 for v in history.distillation)

    def test_no_teacher_means_zero_distill_trace(self, rng):
        X, y = two_blob_data(rng, n_per=8)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=1))
        history = SiameseTrainer(
            TrainConfig(epochs=2, batch_pairs=8), rng=2
        ).train(emb, X, y)
        assert all(v == 0.0 for v in history.distillation)

    def test_too_few_samples_rejected(self, rng):
        emb = SiameseEmbedder(build_mlp(4, hidden_dims=(4,), output_dim=2, rng=1))
        with pytest.raises(DataShapeError):
            SiameseTrainer(TrainConfig(epochs=1), rng=0).train(
                emb, rng.normal(size=(1, 4)), np.array([0])
            )

    def test_history_final_loss(self, rng):
        X, y = two_blob_data(rng, n_per=8)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=1))
        history = SiameseTrainer(TrainConfig(epochs=2, batch_pairs=8), rng=2).train(
            emb, X, y
        )
        assert history.final_loss() == history.total[-1]

    def test_empty_history_final_loss_rejected(self):
        from repro.nn.siamese import TrainHistory

        with pytest.raises(NotFittedError, match="history is empty"):
            TrainHistory().final_loss()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(optimizer="rmsprop")
        with pytest.raises(ConfigurationError):
            TrainConfig(distill_weight=-1.0)

    def test_sgd_optimizer_path(self, rng):
        X, y = two_blob_data(rng, n_per=10)
        emb = SiameseEmbedder(build_mlp(6, hidden_dims=(8,), output_dim=3, rng=1))
        history = SiameseTrainer(
            TrainConfig(epochs=5, batch_pairs=16, optimizer="sgd", lr=1e-2),
            rng=2,
        ).train(emb, X, y)
        assert history.total[-1] <= history.total[0]
