"""Unit tests for the 22-channel layout."""

import pytest

from repro.sensors import (
    CHANNEL_GROUPS,
    CHANNEL_INDEX,
    CHANNEL_NAMES,
    N_CHANNELS,
    channel_index,
    group_indices,
)


class TestChannelLayout:
    def test_exactly_22_channels(self):
        # The paper's "22 mobile sensors".
        assert N_CHANNELS == 22
        assert len(CHANNEL_NAMES) == 22

    def test_names_unique(self):
        assert len(set(CHANNEL_NAMES)) == len(CHANNEL_NAMES)

    def test_index_matches_order(self):
        for i, name in enumerate(CHANNEL_NAMES):
            assert CHANNEL_INDEX[name] == i

    def test_groups_cover_all_channels(self):
        members = [name for group in CHANNEL_GROUPS.values() for name in group]
        assert sorted(members) == sorted(CHANNEL_NAMES)

    def test_groups_are_disjoint(self):
        members = [name for group in CHANNEL_GROUPS.values() for name in group]
        assert len(members) == len(set(members))

    def test_triaxial_groups_have_three_axes(self):
        for group in ("accelerometer", "gyroscope", "magnetometer",
                      "linear_acceleration", "gravity"):
            assert len(CHANNEL_GROUPS[group]) == 3

    def test_rotation_vector_is_quaternion(self):
        assert len(CHANNEL_GROUPS["rotation_vector"]) == 4


class TestLookups:
    def test_group_indices_contiguous_accel(self):
        assert group_indices("accelerometer") == [0, 1, 2]

    def test_group_indices_unknown_raises(self):
        with pytest.raises(KeyError):
            group_indices("thermometer")

    def test_channel_index(self):
        assert channel_index("accel_x") == 0
        assert channel_index("prox") == 21

    def test_channel_index_unknown_raises(self):
        with pytest.raises(KeyError):
            channel_index("bogus")
