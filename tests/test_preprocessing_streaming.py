"""StreamingFeatureExtractor: 1e-9 parity with the per-window extractor.

The streaming extractor's contract is that
``StreamingFeatureExtractor().extract(data, w, stride)`` equals
``FeatureExtractor().extract(sliding_windows(data, w, stride))`` to 1e-9
for every statistic, across strides, odd window lengths, constant signals
(the zcr/slope edge cases) and the empty no-complete-window case.  These
tests pin that contract column by column, plus the zero-copy / dtype
semantics of ``sliding_windows`` the streaming path rests on.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataShapeError
from repro.preprocessing import (
    FeatureConfig,
    FeatureExtractor,
    MIN_PREFIX_WINDOW_LEN,
    PreprocessingPipeline,
    STREAMING_STATISTICS,
    SpectralFeatureExtractor,
    StreamingFeatureExtractor,
    sliding_windows,
)
from repro.preprocessing.features import DEFAULT_STATS, STATISTICS
from repro.sensors.channels import N_CHANNELS

PARITY = dict(rtol=0.0, atol=1e-9)


def continuous_data(rng, n=1500):
    """A continuous (n, 22) signal with offset-heavy channels.

    Barometer (~1013 hPa) and ambient light (~hundreds of lux) stress the
    prefix sums' cancellation resistance the way real recordings do.
    """
    data = rng.normal(size=(n, N_CHANNELS))
    data[:, 19] += 1013.25
    data[:, 20] = np.abs(data[:, 20]) * 300.0
    return data


def assert_column_parity(data, window_len, stride):
    """Every feature column matches the batch extractor at 1e-9."""
    batch = FeatureExtractor()
    streaming = StreamingFeatureExtractor()
    ref = batch.extract(sliding_windows(data, window_len, stride))
    got = streaming.extract(data, window_len, stride=stride)
    assert got.shape == ref.shape
    for col, name in enumerate(batch.feature_names()):
        np.testing.assert_allclose(
            got[:, col], ref[:, col], err_msg=name, **PARITY
        )


class TestStreamingParity:
    @pytest.mark.parametrize("stride", [120, 60, 30, 1])
    def test_default_window_all_strides(self, rng, stride):
        assert_column_parity(continuous_data(rng), 120, stride)

    @pytest.mark.parametrize("window_len,stride", [
        (7, 3),      # odd, below the prefix-sum threshold
        (31, 7),     # odd
        (119, 17),   # odd, just under the paper window
        (1, 1),      # degenerate single-sample windows
    ])
    def test_odd_and_tiny_window_lengths(self, rng, window_len, stride):
        assert_column_parity(continuous_data(rng, n=800), window_len, stride)

    def test_stride_longer_than_window(self, rng):
        assert_column_parity(continuous_data(rng), 120, 250)

    def test_constant_signal_zcr_slope_edge_cases(self):
        data = np.full((600, N_CHANNELS), 3.7)
        assert_column_parity(data, 120, 60)
        streaming = StreamingFeatureExtractor()
        feats = streaming.extract(data, 120, stride=60)
        names = streaming.feature_names()
        for stat in ("zcr", "slope", "std", "iqr", "mad"):
            cols = [i for i, name in enumerate(names) if name.endswith(stat)]
            np.testing.assert_allclose(feats[:, cols], 0.0, atol=1e-9)

    def test_linear_ramp_slope(self, rng):
        data = np.tile(np.arange(900.0)[:, None], (1, N_CHANNELS))
        assert_column_parity(data, 120, 40)

    def test_empty_when_data_shorter_than_window(self, rng):
        streaming = StreamingFeatureExtractor()
        out = streaming.extract(rng.normal(size=(50, N_CHANNELS)), 120)
        assert out.shape == (0, streaming.n_features)
        out = streaming.extract(np.empty((0, N_CHANNELS)), 120)
        assert out.shape == (0, streaming.n_features)

    def test_custom_config_subset(self, rng):
        config = FeatureConfig(
            signals=("accel_mag", "baro"), stats=("median", "slope", "min")
        )
        batch = FeatureExtractor(config)
        streaming = StreamingFeatureExtractor(config)
        data = continuous_data(rng)
        ref = batch.extract(sliding_windows(data, 64, 16))
        got = streaming.extract(data, 64, stride=16)
        np.testing.assert_allclose(got, ref, **PARITY)
        assert streaming.feature_names() == batch.feature_names()

    def test_unknown_stat_falls_back_to_batch_impl(self, rng):
        STATISTICS["ptp"] = lambda s: s.max(axis=1) - s.min(axis=1)
        try:
            config = FeatureConfig(signals=("gyro_mag",), stats=("ptp", "mean"))
            data = continuous_data(rng)
            got = StreamingFeatureExtractor(config).extract(data, 120, stride=60)
            ref = FeatureExtractor(config).extract(sliding_windows(data, 120, 60))
            np.testing.assert_allclose(got, ref, **PARITY)
        finally:
            del STATISTICS["ptp"]

    def test_every_default_stat_has_streaming_impl(self):
        assert set(DEFAULT_STATS) == set(STREAMING_STATISTICS)
        assert MIN_PREFIX_WINDOW_LEN >= 2

    def test_validation_errors(self, rng):
        streaming = StreamingFeatureExtractor()
        with pytest.raises(DataShapeError):
            streaming.extract(np.zeros(100), 10)
        with pytest.raises(DataShapeError):
            streaming.extract(np.zeros((100, 3)), 10)
        with pytest.raises(ConfigurationError):
            streaming.extract(np.zeros((100, N_CHANNELS)), 0)
        with pytest.raises(ConfigurationError):
            streaming.extract(np.zeros((100, N_CHANNELS)), 10, stride=0)


class TestSlidingWindowsView:
    def test_copy_false_is_readonly_view(self, rng):
        data = rng.normal(size=(600, 4))
        view = sliding_windows(data, 120, 60, copy=False)
        copied = sliding_windows(data, 120, 60)
        np.testing.assert_array_equal(view, copied)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0

    def test_copy_false_shares_memory_with_source(self, rng):
        data = rng.normal(size=(600, 4))
        view = sliding_windows(data, 120, 60, copy=False)
        assert np.shares_memory(view, data)
        assert not np.shares_memory(sliding_windows(data, 120, 60), data)

    def test_default_copy_stays_writable(self, rng):
        windows = sliding_windows(rng.normal(size=(600, 4)), 120)
        windows[0, 0, 0] = 42.0  # must not raise
        assert windows[0, 0, 0] == 42.0

    def test_dtype_none_preserves_float32(self, rng):
        data = rng.normal(size=(600, 4)).astype(np.float32)
        assert sliding_windows(data, 120, dtype=None).dtype == np.float32
        assert sliding_windows(data, 120).dtype == np.float64
        view = sliding_windows(data, 120, copy=False, dtype=None)
        assert view.dtype == np.float32
        assert np.shares_memory(view, data)

    def test_empty_result_respects_dtype(self):
        data = np.zeros((10, 4), dtype=np.float32)
        assert sliding_windows(data, 120, dtype=None).dtype == np.float32


class TestPipelineStreamingPlumbing:
    def test_raw_stream_features_rejects_non_2d(self):
        pipeline = PreprocessingPipeline()
        with pytest.raises(DataShapeError):
            pipeline.raw_stream_features(np.zeros(240))

    def test_streaming_extractor_tracks_extractor_reassignment(self):
        pipeline = PreprocessingPipeline()
        first = pipeline.streaming_extractor
        assert first is not None
        pipeline.extractor = FeatureExtractor(
            FeatureConfig(signals=("accel_mag",), stats=("mean",))
        )
        second = pipeline.streaming_extractor
        assert second is not first
        assert second.config is pipeline.extractor.config
        pipeline.extractor = SpectralFeatureExtractor()
        assert pipeline.streaming_extractor is None
