"""End-to-end tests for the TCP gateway.

The acceptance bar: verdicts received over a real localhost socket are
pinned identical (1e-9) to in-process
:class:`~repro.serving.AsyncFleetServer` serving on the same chunking —
including ragged 1-sample ticks and a mid-stream
:meth:`~repro.serving.ModelRegistry.publish` hot-swap — and the
protocol-level contracts hold: ``BUSY`` frames carry a retry-after hint,
no accepted CHUNK is ever dropped (windows served == windows sent after
the drain), both codecs serve identical results, and server-side errors
arrive as the same typed exceptions the in-process API raises.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.exceptions import (
    BackpressureError,
    ConfigurationError,
    ProtocolError,
    UnknownCohortError,
)
from repro.serving import AsyncFleetServer, ModelRegistry
from repro.serving.gateway import GatewayClient, GatewayServer

PARITY = dict(rtol=0.0, atol=1e-9)
WINDOW = 120  # the default pipeline window length

#: Ragged tick sizes, including 1-sample ticks straddling window edges —
#: the same schedule the async-fleet parity tests pin.
RAGGED_SIZES = [1, 119, 1, 179, 240, 60, 1, 1, 358]


@pytest.fixture
def engines(scenario):
    """Two distinct engines: the base package and a 6-class variant."""
    edge_a = scenario.fresh_edge(rng=1)
    edge_b = scenario.fresh_edge(rng=2)
    edge_b.learn_activity(
        "gesture_hi", scenario.sensor_device.record("gesture_hi", 20.0)
    )
    return edge_a.engine, edge_b.engine


@pytest.fixture
def registry(engines):
    engine_a, engine_b = engines
    reg = ModelRegistry(default_cohort="a")
    reg.publish("a", engine_a)
    reg.publish("b", engine_b)
    return reg


def drive(coro):
    """Run one async test body with a safety timeout."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout=60)

    return asyncio.run(bounded())


def _verdict_tuples(verdicts):
    return [
        (v.activity, v.display, round(v.confidence, 12), v.accepted)
        for v in verdicts
    ]


def _chunks(data, sizes):
    out, start = [], 0
    for size in sizes:
        out.append(data[start : start + size])
        start += size
    return out


def _blocking(monkeypatch, engine, release: threading.Event, calls=None):
    """Patch ``engine.infer_features`` to wait for ``release`` first."""
    original = engine.infer_features

    def blocked(features):
        if calls is not None:
            calls.append(features.shape[0])
        release.wait(timeout=30)
        return original(features)

    monkeypatch.setattr(engine, "infer_features", blocked)


async def _in_process_reference(registry, schedule, cohorts):
    """Serve the same chunk schedule without sockets (the parity pin)."""
    got = {sid: [] for sid in schedule}
    async with AsyncFleetServer(registry, workers=2) as server:
        for sid in schedule:
            server.connect(sid, cohort=cohorts.get(sid))
        for tick in range(max(len(c) for c in schedule.values())):
            chunks = {
                sid: chunk_list[tick]
                for sid, chunk_list in schedule.items()
                if tick < len(chunk_list)
            }
            result = await server.step_stream(chunks)
            for sid, verdicts in result.items():
                got[sid].extend(verdicts)
        for sid in schedule:
            got[sid].extend(await server.finish_stream(sid))
    return got


async def _gateway_serve(registry, schedule, cohorts, codec="binary", **gw):
    """Serve the same schedule through a real TCP gateway."""
    got = {}
    async with GatewayServer(registry, **gw) as gateway:

        async def drive_one(sid, chunk_list):
            async with GatewayClient(
                gateway.host, gateway.port, codec=codec
            ) as client:
                await client.connect(sid, cohort=cohorts.get(sid))
                verdicts = []
                for chunk in chunk_list:
                    verdicts.extend(await client.send_chunk(chunk))
                verdicts.extend(await client.finish())
                got[sid] = verdicts

        await asyncio.gather(
            *(drive_one(sid, chunks) for sid, chunks in schedule.items())
        )
    return got


class TestEndToEndParity:
    def test_ragged_ticks_pinned_to_in_process_serving(
        self, registry, scenario
    ):
        """Socket verdicts == in-process verdicts on ragged 1-sample ticks."""
        data = scenario.sensor_device.record("walk", 8.0).data
        chunk_list = _chunks(data, RAGGED_SIZES)
        schedule = {"alice": chunk_list, "bob": chunk_list}
        cohorts = {"alice": "a", "bob": "b"}

        reference = drive(_in_process_reference(registry, schedule, cohorts))
        served = drive(_gateway_serve(registry, schedule, cohorts))

        assert sum(len(v) for v in reference.values()) > 0
        for sid in schedule:
            assert _verdict_tuples(served[sid]) == _verdict_tuples(
                reference[sid]
            )
            np.testing.assert_allclose(
                [v.confidence for v in served[sid]],
                [v.confidence for v in reference[sid]],
                **PARITY,
            )

    def test_json_codec_serves_identical_verdicts(self, registry, scenario):
        data = scenario.sensor_device.record("walk", 4.0).data
        schedule = {"dev": _chunks(data, [240, 1, 119, 240])}
        cohorts = {"dev": "a"}
        binary = drive(_gateway_serve(registry, schedule, cohorts))
        jsonl = drive(
            _gateway_serve(registry, schedule, cohorts, codec="json")
        )
        assert _verdict_tuples(binary["dev"]) == _verdict_tuples(jsonl["dev"])
        assert len(binary["dev"]) > 0

    def test_mid_stream_hot_swap_keeps_open_streams_pinned(
        self, registry, engines, scenario
    ):
        """publish() mid-stream: open socket sessions keep their engine."""
        engine_a, engine_b = engines
        data = scenario.sensor_device.record("walk", 6.0).data
        chunk_list = _chunks(data, [240, 240, 240, 240])
        swap_after = 2  # publish after this many chunks

        async def in_process():
            registry.publish("a", engine_a)  # reset to v1
            got = []
            async with AsyncFleetServer(registry, workers=2) as server:
                server.connect("dev", cohort="a")
                for i, chunk in enumerate(chunk_list):
                    if i == swap_after:
                        registry.publish("a", engine_b)
                    got.extend(
                        (await server.step_stream({"dev": chunk}))["dev"]
                    )
                got.extend(await server.finish_stream("dev"))
            return got

        async def over_the_wire():
            registry.publish("a", engine_a)  # reset to v1
            async with GatewayServer(registry) as gateway:
                async with GatewayClient(gateway.host, gateway.port) as cli:
                    await cli.connect("dev", cohort="a")
                    got = []
                    for i, chunk in enumerate(chunk_list):
                        if i == swap_after:
                            registry.publish("a", engine_b)
                        got.extend(await cli.send_chunk(chunk))
                    got.extend(await cli.finish())
            return got

        reference = drive(in_process())
        served = drive(over_the_wire())
        assert _verdict_tuples(served) == _verdict_tuples(reference)
        assert len(served) > 0

    def test_welcome_reports_session_metadata(self, registry, scenario):
        async def body():
            async with GatewayServer(registry) as gateway:
                async with GatewayClient(gateway.host, gateway.port) as cli:
                    meta = await cli.connect("dev", cohort="b")
            return meta

        meta = drive(body())
        engine_b = registry.engine_for("b")
        assert meta["cohort"] == "b"
        assert meta["window_len"] == engine_b.pipeline.window_len
        assert meta["classes"] == list(engine_b.class_names)


class TestBackpressureContract:
    def test_busy_carries_retry_after_and_nothing_is_dropped(
        self, registry, engines, scenario, monkeypatch
    ):
        """Saturate max_inflight: BUSY has retry-after; drain serves all."""
        engine_a, engine_b = engines
        release = threading.Event()
        _blocking(monkeypatch, engine_a, release)
        data = scenario.sensor_device.record("walk", 4.0).data
        window = data[:WINDOW]

        async def body():
            fleet = AsyncFleetServer(registry, workers=2, max_inflight=1)
            async with GatewayServer(
                fleet, batch_window_s=0.0, retry_after_ms=5.0
            ) as gateway:
                alice = GatewayClient(gateway.host, gateway.port)
                bob = GatewayClient(
                    gateway.host, gateway.port, busy_retries=200
                )
                await alice.connect("alice", cohort="a")
                await bob.connect("bob", cohort="b")
                # alice's tick blocks inside engine_a → occupies the one
                # in-flight slot
                alice_task = asyncio.create_task(alice.send_chunk(window))
                while gateway.fleet.inflight == 0:
                    await asyncio.sleep(0.005)
                # bob's chunk now gets BUSY frames until alice drains;
                # the client absorbs them and retries the same chunk
                bob_task = asyncio.create_task(bob.send_chunk(window))
                while bob.busy_frames_seen == 0:
                    await asyncio.sleep(0.005)
                release.set()
                alice_verdicts = await alice_task
                bob_verdicts = await bob_task
                alice_verdicts += await alice.finish()
                bob_verdicts += await bob.finish()
                busy_seen = bob.busy_frames_seen
                refusals = gateway.busy_refusals
                served = gateway.fleet.summary()["windows_served"]
                await alice.aclose()
                await bob.aclose()
            fleet.close()
            return alice_verdicts, bob_verdicts, busy_seen, refusals, served

        alice_verdicts, bob_verdicts, busy_seen, refusals, served = drive(
            body()
        )
        # windows served == windows sent: one full window per session
        assert len(alice_verdicts) == 1
        assert len(bob_verdicts) == 1
        assert busy_seen >= 1
        assert refusals >= 1
        assert served == 2.0

    def test_busy_frame_meta_has_retry_hint(self, registry, engines,
                                            scenario, monkeypatch):
        """The raw BUSY frame exposes retry_after_ms > 0 and inflight."""
        from repro.serving.gateway import (
            BinaryFrameCodec,
            FrameType,
            chunk_frame,
            hello_frame,
        )

        engine_a, engine_b = engines
        release = threading.Event()
        _blocking(monkeypatch, engine_a, release)
        window = scenario.sensor_device.record("walk", 1.0).data[:WINDOW]

        async def body():
            fleet = AsyncFleetServer(registry, workers=2, max_inflight=1)
            async with GatewayServer(
                fleet, batch_window_s=0.0, retry_after_ms=7.5
            ) as gateway:
                blocker = GatewayClient(gateway.host, gateway.port)
                await blocker.connect("alice", cohort="a")
                blocked = asyncio.create_task(blocker.send_chunk(window))
                while gateway.fleet.inflight == 0:
                    await asyncio.sleep(0.005)
                # speak the raw protocol for bob to inspect the BUSY frame
                codec = BinaryFrameCodec()
                reader, writer = await asyncio.open_connection(
                    gateway.host, gateway.port
                )
                writer.write(codec.encode(hello_frame("bob", cohort="b")))
                writer.write(codec.encode(chunk_frame(1, window)))
                await writer.drain()
                frames = []
                while len(frames) < 2:
                    frames.extend(codec.feed(await reader.read(4096)))
                release.set()
                await blocked
                writer.close()
            fleet.close()
            return frames

        frames = drive(body())
        assert frames[0].type == FrameType.WELCOME
        busy = frames[1]
        assert busy.type == FrameType.BUSY
        assert busy.meta["retry_after_ms"] >= 7.5
        assert busy.meta["inflight"] >= 1
        assert busy.seq == 1


class TestTypedErrorsOverTheWire:
    def test_unknown_cohort_raises_typed_exception_client_side(
        self, registry
    ):
        async def body():
            async with GatewayServer(registry) as gateway:
                async with GatewayClient(gateway.host, gateway.port) as cli:
                    with pytest.raises(UnknownCohortError):
                        await cli.connect("dev", cohort="nope")

        drive(body())

    def test_duplicate_session_id_raises_configuration_error(self, registry):
        async def body():
            async with GatewayServer(registry) as gateway:
                async with GatewayClient(gateway.host, gateway.port) as one:
                    await one.connect("dev", cohort="a")
                    async with GatewayClient(
                        gateway.host, gateway.port
                    ) as two:
                        with pytest.raises(ConfigurationError):
                            await two.connect("dev", cohort="a")

        drive(body())

    def test_chunk_before_hello_is_a_protocol_error(self, registry, scenario):
        from repro.serving.gateway import (
            BinaryFrameCodec,
            FrameType,
            chunk_frame,
        )

        window = scenario.sensor_device.record("walk", 1.0).data[:WINDOW]

        async def body():
            async with GatewayServer(registry) as gateway:
                codec = BinaryFrameCodec()
                reader, writer = await asyncio.open_connection(
                    gateway.host, gateway.port
                )
                writer.write(codec.encode(chunk_frame(1, window)))
                await writer.drain()
                frames = codec.feed(await reader.read(4096))
                writer.close()
            return frames

        frames = drive(body())
        assert frames[0].type == FrameType.ERROR
        assert frames[0].meta["code"] == "PROTOCOL"
        assert frames[0].meta["fatal"] is True

    def test_session_released_when_connection_closes(self, registry,
                                                     scenario):
        """A closed connection frees the id for the next client."""
        data = scenario.sensor_device.record("walk", 1.0).data

        async def body():
            async with GatewayServer(registry) as gateway:
                async with GatewayClient(gateway.host, gateway.port) as one:
                    await one.connect("dev", cohort="a")
                    await one.send_chunk(data)
                # reconnecting under the same id must succeed once the
                # server has released the session
                for _ in range(200):
                    try:
                        async with GatewayClient(
                            gateway.host, gateway.port
                        ) as two:
                            await two.connect("dev", cohort="a")
                            return True
                    except ConfigurationError:
                        await asyncio.sleep(0.01)
                return False

        assert drive(body())
