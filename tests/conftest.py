"""Shared fixtures.

Expensive artifacts (campaign, fitted pipeline, pre-trained package) are
session-scoped and deliberately small; tests that mutate state get fresh
copies (``scenario.fresh_edge()``, ``support_set.clone()``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CloudConfig
from repro.datasets import build_edge_scenario
from repro.nn import TrainConfig
from repro.preprocessing import PreprocessingPipeline
from repro.sensors import generate_campaign


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_campaign():
    """A small balanced campaign: 3 users x 10 windows x 5 activities."""
    return generate_campaign(
        n_users=3, windows_per_user_per_activity=10, rng=101
    )


@pytest.fixture(scope="session")
def fitted_pipeline(tiny_campaign):
    pipeline = PreprocessingPipeline()
    pipeline.fit_normalizer(tiny_campaign.windows)
    return pipeline


@pytest.fixture(scope="session")
def campaign_features(tiny_campaign, fitted_pipeline):
    """(features, labels) of the tiny campaign."""
    return (
        fitted_pipeline.process_windows(tiny_campaign.windows),
        tiny_campaign.labels,
    )


def small_cloud_config() -> CloudConfig:
    """The test-scale Cloud configuration used across fixtures."""
    return CloudConfig(
        backbone_dims=(64, 32),
        embedding_dim=16,
        train=TrainConfig(epochs=10, batch_pairs=32, lr=1e-3),
        support_capacity=25,
    )


@pytest.fixture(scope="session")
def scenario():
    """A full pre-trained scenario with a held-out edge user."""
    return build_edge_scenario(
        cloud_config=small_cloud_config(),
        n_users=3,
        windows_per_user_per_activity=12,
        base_test_windows_per_activity=8,
        rng=77,
    )


@pytest.fixture
def edge(scenario):
    """A freshly provisioned edge device (safe to mutate)."""
    return scenario.fresh_edge(rng=5)
