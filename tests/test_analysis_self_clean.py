"""The lint pass runs self-clean over the live tree, and the CLI gates.

Two halves of the acceptance criterion: ``run_lint.py --strict`` exits 0
on the repository (every suppression justified), and exits non-zero when
pointed at any fixture with a seeded violation.
"""

import pathlib
import sys

import pytest

from repro.analysis import (
    DEFAULT_CHECKERS,
    DEFAULT_REPO_CHECKERS,
    lint_paths,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = pathlib.Path(__file__).parent / "analysis_fixtures"

sys.path.insert(0, str(REPO_ROOT / "tools"))
import run_lint  # noqa: E402  (tools/ is not a package)


def live_report(strict=True):
    return lint_paths(
        [REPO_ROOT / "src"],
        [cls() for cls in DEFAULT_CHECKERS],
        root=REPO_ROOT,
        repo_checkers=[cls() for cls in DEFAULT_REPO_CHECKERS],
        strict=strict,
    )


class TestLiveTreeSelfClean:
    def test_src_scans_clean_under_strict(self):
        report = live_report(strict=True)
        assert report.errors == [], "\n".join(
            v.format() for v in report.errors
        )

    def test_every_suppression_is_justified(self):
        report = live_report(strict=True)
        assert report.suppressed, "expected the known failure-isolation sites"
        for violation, pragma in report.suppressed:
            assert pragma.justification, violation.format()

    def test_known_failure_isolation_sites_are_suppressed(self):
        """The three broad-except swallows in engine/async_fleet demux."""
        report = live_report()
        suppressed = {
            (v.path, v.rule) for v, _ in report.suppressed
        }
        assert ("src/repro/core/engine.py", "broad-except") in suppressed
        assert (
            "src/repro/serving/async_fleet.py",
            "broad-except",
        ) in suppressed

    def test_warnings_are_only_bench_ungated(self):
        """Ungated benchmarks are the one tolerated warning class."""
        report = live_report()
        assert {v.rule for v in report.warnings} <= {"bench-ungated"}

    def test_promoted_gates_have_baselines(self):
        """PR satellite: latency + memory joined the gate manifest."""
        from repro.analysis.bench_manifest import read_gate_rows

        rows = read_gate_rows(REPO_ROOT / "tools" / "run_bench_gates.py")
        names = {name for name, _, _ in rows}
        assert {"latency", "memory"} <= names
        for name in ("latency", "memory"):
            assert (REPO_ROOT / f"BENCH_{name}.json").is_file()


class TestRunLintCli:
    @pytest.mark.parametrize("fixture", [
        "alias_assign.py",
        "unsorted_locks.py",
        "out_of_layer_call.py",
        "raw_raise.py",
        "broad_except.py",
        "async_blocking.py",
    ])
    def test_seeded_fixture_fails_the_gate(self, fixture, capsys):
        exit_code = run_lint.main(["--strict", str(FIXTURES / fixture)])
        out = capsys.readouterr().out
        assert exit_code == 1, out
        assert "error" in out

    def test_clean_fixture_passes(self, capsys):
        assert run_lint.main(["--strict", str(FIXTURES / "clean.py")]) == 0
        capsys.readouterr()

    def test_unjustified_pragma_passes_default_fails_strict(self, capsys):
        fixture = str(FIXTURES / "bad_pragma.py")
        assert run_lint.main([fixture]) == 0
        assert run_lint.main(["--strict", fixture]) == 1
        assert "pragma-justification" in capsys.readouterr().out

    def test_default_tree_strict_exits_zero(self, capsys):
        """The CI invocation: lint src/ + bench manifest, strict."""
        assert run_lint.main(["--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        import json

        assert run_lint.main(["--json", str(FIXTURES / "raw_raise.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 3
        assert all(
            v["rule"] == "raw-raise" for v in payload["violations"]
        )

    def test_list_rules(self, capsys):
        assert run_lint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "entry-point", "raw-raise", "broad-except", "array-alias",
            "view-return", "async-blocking", "lock-order", "bench-gate",
            "bench-ungated", "pragma-justification",
        ):
            assert rule in out

    def test_missing_path_is_usage_error(self, capsys):
        assert run_lint.main(["no/such/file.py"]) == 2
        capsys.readouterr()

    def test_verbose_shows_justifications(self, capsys):
        exit_code = run_lint.main([
            "--verbose", str(FIXTURES / "broad_except.py")
        ])
        out = capsys.readouterr().out
        assert exit_code == 1  # the seeded swallow still fails
        assert "suppressed:" in out
        assert "failure isolation fixture" in out
