"""Unit tests for the sensor stream and campaign dataset generation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sensors import (
    BASE_ACTIVITIES,
    RawDataset,
    SensorDevice,
    SensorStream,
    concatenate_datasets,
    generate_campaign,
    generate_user_windows,
    sample_user,
)


@pytest.fixture
def device():
    return SensorDevice(rng=7)


class TestSensorStream:
    def test_chunk_shapes(self, device):
        stream = SensorStream(device, [("walk", 3.0)], chunk_duration_s=1.0)
        chunks = stream.collect()
        assert len(chunks) == 3
        for chunk in chunks:
            assert chunk.data.shape == (120, 22)
            assert chunk.activity == "walk"

    def test_chunks_do_not_straddle_segments(self, device):
        stream = SensorStream(
            device, [("walk", 2.5), ("still", 1.6)], chunk_duration_s=1.0
        )
        chunks = stream.collect()
        # 2 full walk windows (0.5 s tail dropped) + 1 still window.
        activities = [c.activity for c in chunks]
        assert activities == ["walk", "walk", "still"]

    def test_t_start_progression(self, device):
        stream = SensorStream(device, [("walk", 2.0), ("run", 2.0)])
        starts = [c.t_start for c in stream]
        assert starts == [0.0, 1.0, 2.0, 3.0]

    def test_empty_segments_rejected(self, device):
        with pytest.raises(ConfigurationError):
            SensorStream(device, [])

    def test_nonpositive_duration_rejected(self, device):
        with pytest.raises(ConfigurationError):
            SensorStream(device, [("walk", 0.0)])

    def test_nonpositive_chunk_rejected(self, device):
        with pytest.raises(ConfigurationError):
            SensorStream(device, [("walk", 1.0)], chunk_duration_s=0.0)

    def test_half_second_chunks(self, device):
        stream = SensorStream(device, [("walk", 2.0)], chunk_duration_s=0.5)
        chunks = stream.collect()
        assert len(chunks) == 4
        assert chunks[0].data.shape == (60, 22)


class TestGenerateUserWindows:
    def test_balanced_counts(self):
        user = sample_user(1, rng=0)
        ds = generate_user_windows(
            user, activities=["walk", "still"], windows_per_activity=7, rng=1
        )
        assert ds.class_counts() == {"walk": 7, "still": 7}

    def test_window_shape(self):
        user = sample_user(1, rng=0)
        ds = generate_user_windows(
            user, activities=["walk"], windows_per_activity=3, rng=1
        )
        assert ds.windows.shape == (3, 120, 22)

    def test_user_ids_recorded(self):
        user = sample_user(42, rng=0)
        ds = generate_user_windows(
            user, activities=["walk"], windows_per_activity=2, rng=1
        )
        assert np.all(ds.user_ids == 42)

    def test_zero_windows_rejected(self):
        user = sample_user(1, rng=0)
        with pytest.raises(ConfigurationError):
            generate_user_windows(
                user, activities=["walk"], windows_per_activity=0, rng=1
            )

    def test_large_request_spans_sessions(self):
        # More than one 30-window session bout.
        user = sample_user(1, rng=0)
        ds = generate_user_windows(
            user, activities=["still"], windows_per_activity=65, rng=1
        )
        assert ds.class_counts()["still"] == 65


class TestGenerateCampaign:
    def test_default_activities_are_base_five(self, tiny_campaign):
        assert tiny_campaign.class_names == tuple(BASE_ACTIVITIES)

    def test_balanced_across_classes(self, tiny_campaign):
        counts = set(tiny_campaign.class_counts().values())
        assert len(counts) == 1

    def test_user_count(self, tiny_campaign):
        assert len(np.unique(tiny_campaign.user_ids)) == 3

    def test_deterministic(self):
        a = generate_campaign(n_users=2, windows_per_user_per_activity=3, rng=9)
        b = generate_campaign(n_users=2, windows_per_user_per_activity=3, rng=9)
        assert np.allclose(a.windows, b.windows)
        assert np.array_equal(a.labels, b.labels)

    def test_zero_users_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_campaign(n_users=0)


class TestRawDataset:
    def test_subset_by_mask(self, tiny_campaign):
        mask = tiny_campaign.labels == 0
        sub = tiny_campaign.subset(mask)
        assert sub.n_windows == int(mask.sum())
        assert np.all(sub.labels == 0)

    def test_for_user(self, tiny_campaign):
        uid = int(tiny_campaign.user_ids[0])
        sub = tiny_campaign.for_user(uid)
        assert np.all(sub.user_ids == uid)
        assert sub.n_windows > 0

    def test_label_of(self, tiny_campaign):
        assert tiny_campaign.label_of("drive") == 0
        with pytest.raises(ValueError):
            tiny_campaign.label_of("bogus")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            RawDataset(
                windows=np.zeros((3, 10, 22)),
                labels=np.zeros(2, dtype=np.int64),
                user_ids=np.zeros(3, dtype=np.int64),
                class_names=("a",),
            )

    def test_concatenate(self, tiny_campaign):
        both = concatenate_datasets([tiny_campaign, tiny_campaign])
        assert both.n_windows == 2 * tiny_campaign.n_windows

    def test_concatenate_mismatched_classes_rejected(self, tiny_campaign):
        other = RawDataset(
            windows=np.zeros((1, 120, 22)),
            labels=np.zeros(1, dtype=np.int64),
            user_ids=np.zeros(1, dtype=np.int64),
            class_names=("other",),
        )
        with pytest.raises(ConfigurationError):
            concatenate_datasets([tiny_campaign, other])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            concatenate_datasets([])
