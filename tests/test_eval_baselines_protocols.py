"""Unit tests for baseline strategies, the Cloud classifier and the protocol."""

import numpy as np
import pytest

from repro.core import NetworkLink, PrivacyGuard
from repro.datasets import train_test_windows
from repro.eval import (
    ClassData,
    CloudClassifier,
    FrozenPrototypeStrategy,
    MagnetoStrategy,
    NaiveFineTuneStrategy,
    ReplayOnlyStrategy,
    ScratchRetrainStrategy,
    run_incremental_protocol,
)
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def increments(request):
    """Train/test feature sets for one new gesture, per module."""
    scenario = request.getfixturevalue("scenario")
    pipeline = scenario.package.pipeline
    train_w, test_w = train_test_windows(
        scenario.edge_user, "gesture_hi", n_train=15, n_test=10, rng=21
    )
    return [
        ClassData(
            name="gesture_hi",
            train_features=pipeline.process_windows(train_w),
            test_features=pipeline.process_windows(test_w),
        )
    ]


@pytest.fixture(scope="module")
def base_test_sets(request):
    scenario = request.getfixturevalue("scenario")
    pipeline = scenario.package.pipeline
    sets = {}
    for label, name in enumerate(scenario.base_test.class_names):
        mask = scenario.base_test.labels == label
        sets[name] = pipeline.process_windows(scenario.base_test.windows[mask])
    return sets


class TestStrategyMechanics:
    def test_unprepared_strategy_raises(self):
        strategy = MagnetoStrategy(rng=0)
        with pytest.raises(NotFittedError):
            strategy.classify(np.zeros((1, 80)))

    def test_prepare_isolates_state(self, scenario):
        a = MagnetoStrategy(rng=0)
        b = FrozenPrototypeStrategy(rng=0)
        a.prepare(scenario.package)
        b.prepare(scenario.package)
        # Mutating one must not affect the other or the scenario package.
        a.support_set.remove_class("walk")
        assert "walk" in b.support_set.class_names
        assert "walk" in scenario.package.support_set.class_names

    def test_magneto_requires_positive_weight(self):
        with pytest.raises(ConfigurationError):
            MagnetoStrategy(distill_weight=0.0)

    def test_frozen_prototype_never_changes_weights(self, scenario, increments):
        strategy = FrozenPrototypeStrategy(rng=0)
        strategy.prepare(scenario.package)
        w_before = strategy.embedder.network.layers[0].weight.data.copy()
        strategy.add_class("gesture_hi", increments[0].train_features)
        assert np.allclose(
            strategy.embedder.network.layers[0].weight.data, w_before
        )

    def test_scratch_retrain_reinitializes(self, scenario, increments):
        strategy = ScratchRetrainStrategy(epochs=2, rng=0)
        strategy.prepare(scenario.package)
        w_before = strategy.embedder.network.layers[0].weight.data.copy()
        strategy.add_class("gesture_hi", increments[0].train_features)
        assert not np.allclose(
            strategy.embedder.network.layers[0].weight.data, w_before
        )


class TestProtocol:
    def test_base_step_recorded_first(self, scenario, base_test_sets, increments):
        strategy = FrozenPrototypeStrategy(rng=0)
        strategy.prepare(scenario.package)
        result = run_incremental_protocol(strategy, base_test_sets, increments)
        assert result.steps[0].step == 0
        assert result.steps[0].learned_class == ""
        assert result.steps[0].forgetting == 0.0
        assert np.isnan(result.steps[0].new_class_accuracy)

    def test_step_one_reports_new_class(self, scenario, base_test_sets, increments):
        strategy = FrozenPrototypeStrategy(rng=0)
        strategy.prepare(scenario.package)
        result = run_incremental_protocol(strategy, base_test_sets, increments)
        assert result.steps[1].learned_class == "gesture_hi"
        assert "gesture_hi" in result.steps[1].per_class_accuracy

    def test_magneto_learns_without_forgetting(
        self, scenario, base_test_sets, increments
    ):
        strategy = MagnetoStrategy(rng=1)
        strategy.prepare(scenario.package)
        result = run_incremental_protocol(strategy, base_test_sets, increments)
        final = result.steps[-1]
        assert final.new_class_accuracy > 0.7
        assert final.forgetting < 0.2
        assert result.final_overall() > 0.7

    def test_naive_finetune_forgets_more_than_magneto(
        self, scenario, base_test_sets, increments
    ):
        """The core comparative claim behind MAGNETO's design."""
        magneto = MagnetoStrategy(rng=1)
        naive = NaiveFineTuneStrategy(rng=1)
        magneto.prepare(scenario.package)
        naive.prepare(scenario.package)
        res_m = run_incremental_protocol(magneto, base_test_sets, increments)
        res_n = run_incremental_protocol(naive, base_test_sets, increments)
        assert res_n.mean_forgetting() > res_m.mean_forgetting()
        assert res_m.final_overall() > res_n.final_overall()

    def test_mean_forgetting_requires_steps(self):
        from repro.eval import ProtocolResult, StepRecord

        result = ProtocolResult(strategy="x")
        result.steps.append(
            StepRecord(0, "", 1.0, float("nan"), {"a": 1.0}, 0.0)
        )
        with pytest.raises(Exception):
            result.mean_forgetting()

    def test_unknown_base_class_rejected(self, scenario, increments):
        strategy = FrozenPrototypeStrategy(rng=0)
        strategy.prepare(scenario.package)
        with pytest.raises(ConfigurationError):
            run_incremental_protocol(
                strategy, {"not_a_class": np.zeros((2, 80))}, increments
            )


class TestCloudClassifier:
    def test_trains_and_predicts(self, scenario, campaign_features):
        X, y = campaign_features
        clf = CloudClassifier(hidden_dims=(32,), epochs=30, rng=0)
        losses = clf.train(X, y, scenario.package.support_set.class_names)
        assert losses[-1] < losses[0]
        acc = float(np.mean(clf.predict(X) == y))
        assert acc > 0.8

    def test_remote_inference_records_violation_and_latency(
        self, scenario, campaign_features
    ):
        X, y = campaign_features
        clf = CloudClassifier(hidden_dims=(32,), epochs=5, rng=0)
        clf.train(X, y, scenario.package.support_set.class_names)

        guard = PrivacyGuard(enforce=False)
        link = NetworkLink(latency_ms=40.0, bandwidth_mbps=20.0, rng=0)
        window = scenario.base_test.windows[0]
        features = scenario.package.pipeline.process_window(window)
        result = clf.infer_remote(window, features, link, guard)
        assert result.network_ms >= 80.0  # two latency legs
        assert result.total_ms == result.network_ms + result.compute_ms
        assert guard.user_bytes_sent_to_cloud() > 0

    def test_untrained_predict_rejected(self, rng):
        with pytest.raises(NotFittedError):
            CloudClassifier().predict(rng.normal(size=(2, 4)))

    def test_label_range_checked(self, rng):
        clf = CloudClassifier(epochs=1, rng=0)
        with pytest.raises(ConfigurationError):
            clf.train(rng.normal(size=(4, 3)), np.array([0, 1, 2, 3]), ["a", "b"])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CloudClassifier(epochs=0)
        with pytest.raises(ConfigurationError):
            CloudClassifier(compute_ms=-1.0)
