"""Chunked streaming sessions: carry-over across ticks, zero windows lost.

The contract under test: across *any* split of a recording into chunks —
aligned ticks, ragged ticks, 1-sample ticks — the chunked path
(``pipeline.process_chunk`` / ``engine.infer_chunk`` /
``FleetServer.step_stream``) produces exactly the windows one monolithic
``infer_stream`` call produces, with identical names/labels/accepts and
distances/confidences inside the streaming parity budget.  Plus the
satellite fixes: up-front chunk validation in ``step_stream``, serving
counters only mutated after the batched call succeeds, channel validation
on the zero-window early return, and ``window_count`` argument checks.
"""

import numpy as np
import pytest

from repro.core import (
    FleetServer,
    HysteresisSmoother,
    InferenceEngine,
    StreamSession,
)
from repro.edge_runtime import EdgeRuntime
from repro.eval import run_stream_protocol
from repro.exceptions import ConfigurationError, DataShapeError, NotFittedError
from repro.preprocessing import (
    ButterworthLowpass,
    IdentityFilter,
    MedianFilter,
    MovingAverageFilter,
    PreprocessingPipeline,
    window_count,
)

PARITY = dict(rtol=0.0, atol=1e-9)
W = 120  # the default window length of every pipeline in these tests


@pytest.fixture
def recording(scenario):
    return scenario.sensor_device.record("walk", 6.0)


@pytest.fixture
def identity_engine(edge):
    """The edge engine with an identity denoiser (chunk-exact at any stride)."""
    return _engine_with_denoiser(edge, IdentityFilter())


def _engine_with_denoiser(edge, denoiser) -> InferenceEngine:
    pipeline = PreprocessingPipeline(
        denoiser=denoiser,
        extractor=edge.pipeline.extractor,
        normalizer=edge.pipeline.normalizer,
    )
    return InferenceEngine(edge.embedder, edge.ncm, pipeline=pipeline)


def _splits(n_total, rng, lo=1, hi=300):
    """Random chunk sizes summing exactly to ``n_total``."""
    sizes = []
    remaining = n_total
    while remaining:
        size = min(int(rng.integers(lo, hi + 1)), remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def _feed_chunks(engine, data, sizes, stride=None):
    """Concatenated chunked verdicts (names, confidences, accepted)."""
    session = engine.open_stream(stride=stride)
    names, confidences, accepted = [], [], []
    pos = 0
    for size in sizes:
        batch = engine.infer_chunk(session, data[pos : pos + size])
        names += batch.names
        confidences += list(batch.confidences)
        accepted += list(batch.accepted)
        pos += size
    assert pos == data.shape[0]
    batch = engine.finish_stream(session)
    names += batch.names
    confidences += list(batch.confidences)
    accepted += list(batch.accepted)
    return names, np.asarray(confidences), accepted, session


# ---------------------------------------------------------------------- #
# denoiser streams
# ---------------------------------------------------------------------- #


class TestDenoiserStreams:
    @pytest.mark.parametrize(
        "denoiser",
        [IdentityFilter(), MovingAverageFilter(5), MedianFilter(7)],
        ids=["identity", "moving_average", "median"],
    )
    def test_chunked_apply_is_bit_identical(self, denoiser, rng):
        data = rng.normal(size=(400, 3))
        ref = denoiser.apply(data)
        for sizes in ([400], [1] * 400, _splits(400, rng, hi=37)):
            stream = denoiser.make_stream()
            parts = []
            pos = 0
            for size in sizes:
                parts.append(stream.push(data[pos : pos + size]))
                pos += size
            parts.append(stream.finish())
            got = np.concatenate(parts, axis=0)
            assert got.shape == ref.shape
            assert np.array_equal(got, ref), sizes[:5]

    def test_butterworth_stream_matches_filtfilt(self, rng):
        """The zero-phase IIR stream reproduces filtfilt bit-for-bit.

        The backward pass is truncated to a bounded lookahead; the
        truncation error (``rho**T``) sits below one float64 ulp of the
        signal, so emitted blocks equal the monolithic ``apply()``.
        """
        denoiser = ButterworthLowpass()
        stream = denoiser.make_stream()
        assert stream.error_bound < 1e-15
        assert stream.lookahead == stream.block + stream.truncation
        for n in (3, 15, 16, 100, 500, 2000):
            data = rng.normal(size=(n, 2))
            ref = denoiser.apply(data)
            s = denoiser.make_stream()
            got = np.concatenate([s.push(data), s.finish()], axis=0)
            assert got.shape == ref.shape
            np.testing.assert_allclose(got, ref, rtol=0.0, atol=1e-12)

    def test_butterworth_stream_is_chunking_invariant(self, rng):
        """Every chunking of the signal yields bit-identical output."""
        denoiser = ButterworthLowpass()
        data = rng.normal(size=(400, 3))
        ref_stream = denoiser.make_stream()
        ref = np.concatenate(
            [ref_stream.push(data), ref_stream.finish()], axis=0
        )
        for sizes in ([1] * 400, _splits(400, rng, hi=37)):
            stream = denoiser.make_stream()
            parts = []
            pos = 0
            for size in sizes:
                parts.append(stream.push(data[pos : pos + size]))
                pos += size
            parts.append(stream.finish())
            got = np.concatenate(parts, axis=0)
            assert got.shape == ref.shape
            assert np.array_equal(got, ref), sizes[:5]

    def test_stream_rejects_use_after_finish(self, rng):
        stream = MovingAverageFilter(5).make_stream()
        stream.push(rng.normal(size=(10, 2)))
        stream.finish()
        with pytest.raises(ConfigurationError):
            stream.push(np.zeros((4, 2)))
        with pytest.raises(ConfigurationError):
            stream.finish()

    def test_stream_rejects_channel_change(self, rng):
        stream = MedianFilter(5).make_stream()
        stream.push(rng.normal(size=(10, 3)))
        with pytest.raises(DataShapeError):
            stream.push(np.zeros((4, 2)))

    def test_lookahead_delays_emission(self, rng):
        stream = MovingAverageFilter(5).make_stream()  # lookahead 2
        out = stream.push(rng.normal(size=(10, 1)))
        assert out.shape[0] == 8
        assert stream.finish().shape[0] == 2

    def test_caller_may_reuse_chunk_arrays(self, rng):
        """The stream must not alias caller memory (ring-buffer producers)."""
        data = rng.normal(size=(8, 2))
        ref_stream = MovingAverageFilter(5).make_stream()
        ref = np.concatenate(
            [ref_stream.push(data[i : i + 1].copy()) for i in range(8)]
            + [ref_stream.finish()]
        )
        stream = MovingAverageFilter(5).make_stream()
        reused = np.empty((1, 2))
        parts = []
        for i in range(8):
            reused[:] = data[i : i + 1]
            parts.append(stream.push(reused))
            reused[:] = -1e9  # caller overwrites its buffer between ticks
        parts.append(stream.finish())
        assert np.array_equal(np.concatenate(parts), ref)


# ---------------------------------------------------------------------- #
# pipeline chunking
# ---------------------------------------------------------------------- #


class TestPipelineChunking:
    def _feed(self, pipeline, data, sizes, stride=None):
        state = pipeline.open_stream(stride=stride)
        blocks = []
        pos = 0
        for size in sizes:
            blocks.append(pipeline.process_chunk(state, data[pos : pos + size]))
            pos += size
        blocks.append(pipeline.finish_stream(state))
        return np.concatenate(blocks, axis=0), state

    def test_windowed_mode_parity_default_denoiser(self, edge, recording, rng):
        pipeline = edge.pipeline
        ref = pipeline.process_stream(recording.data)
        for sizes in ([100] * 7 + [20], _splits(recording.data.shape[0], rng)):
            got, state = self._feed(pipeline, recording.data, sizes)
            assert got.shape == ref.shape
            np.testing.assert_allclose(got, ref, **PARITY)
            assert state.chunk_invariant
            assert state.windows_out == ref.shape[0]

    @pytest.mark.parametrize("stride", [60, 30, 1])
    def test_stream_mode_parity_bounded_denoiser(self, edge, recording, rng, stride):
        pipeline = _engine_with_denoiser(edge, MovingAverageFilter(5)).pipeline
        ref = pipeline.process_stream(recording.data, stride=stride)
        sizes = _splits(recording.data.shape[0], rng)
        got, state = self._feed(pipeline, recording.data, sizes, stride=stride)
        assert got.shape == ref.shape
        np.testing.assert_allclose(got, ref, **PARITY)
        assert state.chunk_invariant

    def test_one_sample_ticks(self, edge):
        pipeline = edge.pipeline
        data = edge.pipeline.denoiser  # noqa: F841 - keep fixture warm
        samples = np.ascontiguousarray(
            np.random.default_rng(3).normal(size=(150, 22))
        )
        ref = pipeline.process_stream(samples)
        got, state = self._feed(pipeline, samples, [1] * 150)
        np.testing.assert_allclose(got, ref, **PARITY)
        assert state.samples_in == 150
        assert state.pending_samples == 150 - W

    def test_state_bookkeeping_and_tail_bound(self, edge, recording):
        pipeline = edge.pipeline
        state = pipeline.open_stream()
        pos = 0
        for size in [100] * 7:
            pipeline.process_chunk(state, recording.data[pos : pos + size])
            pos += size
            assert state.pending_samples < W  # carry tail stays bounded
            assert state.samples_in == pos
            assert state.next_window_start == state.windows_out * W
        assert state.windows_out == (7 * 100) // W

    def test_gap_skipping_when_stride_exceeds_window(self, edge, recording):
        stride = 150  # windows at 0, 150, 300, ... with 30-sample gaps
        pipeline = _engine_with_denoiser(edge, IdentityFilter()).pipeline
        ref = pipeline.process_stream(recording.data, stride=stride)
        got, state = self._feed(
            pipeline, recording.data, [70] * (recording.data.shape[0] // 70)
            + [recording.data.shape[0] % 70], stride=stride
        )
        assert got.shape == ref.shape
        np.testing.assert_allclose(got, ref, **PARITY)

    def test_butterworth_overlap_is_chunk_exact(self, edge, recording, rng):
        """Zero-phase IIR streaming: overlapping strides are chunk-exact."""
        pipeline = edge.pipeline
        ref = pipeline.process_stream(recording.data, stride=30)
        for sizes in ([240] * 3, _splits(recording.data.shape[0], rng)):
            got, state = self._feed(pipeline, recording.data, sizes, stride=30)
            assert state.chunk_invariant
            assert got.shape == ref.shape
            np.testing.assert_allclose(got, ref, **PARITY)

    def test_chunk_path_safe_against_reused_caller_buffers(self, edge):
        """Carried tails never alias the caller's (reusable) tick array."""
        data = np.random.default_rng(8).normal(size=(300, 22))
        ref, _ = self._feed(edge.pipeline, data, [100, 100, 100])
        state = edge.pipeline.open_stream()
        reused = np.empty((100, 22))
        blocks = []
        for start in (0, 100, 200):
            reused[:] = data[start : start + 100]
            blocks.append(edge.pipeline.process_chunk(state, reused))
            reused[:] = -1e9  # caller overwrites its buffer between ticks
        blocks.append(edge.pipeline.finish_stream(state))
        np.testing.assert_array_equal(np.concatenate(blocks, axis=0), ref)

    def test_chunk_channel_validation(self, edge):
        pipeline = edge.pipeline
        state = pipeline.open_stream()
        with pytest.raises(DataShapeError):
            pipeline.process_chunk(state, np.zeros((10, 5)))  # short AND bad
        pipeline.process_chunk(state, np.zeros((10, 22)))
        with pytest.raises(DataShapeError):
            pipeline.process_chunk(state, np.zeros((10, 21)))
        with pytest.raises(DataShapeError):
            pipeline.process_chunk(state, np.zeros(10))

    def test_finished_stream_rejects_further_chunks(self, edge):
        pipeline = edge.pipeline
        state = pipeline.open_stream()
        pipeline.finish_stream(state)
        with pytest.raises(ConfigurationError):
            pipeline.process_chunk(state, np.zeros((10, 22)))
        with pytest.raises(ConfigurationError):
            pipeline.finish_stream(state)

    def test_open_stream_validation(self, edge):
        pipeline = edge.pipeline
        with pytest.raises(ConfigurationError):
            pipeline.open_stream(stride=0)
        with pytest.raises(ConfigurationError):
            pipeline.open_stream(denoise="bogus")
        with pytest.raises(ConfigurationError):
            pipeline.open_stream(stride=30, denoise="windowed")

    def test_unfitted_pipeline_rejects_chunks(self):
        pipeline = PreprocessingPipeline()
        state = pipeline.open_stream()
        with pytest.raises(NotFittedError):
            pipeline.process_chunk(state, np.zeros((10, 22)))
        with pytest.raises(NotFittedError):
            pipeline.finish_stream(state)


class TestStreamValidationSatellites:
    def test_short_malformed_stream_input_raises(self, edge):
        """Zero-window inputs no longer bypass channel validation."""
        with pytest.raises(DataShapeError):
            edge.pipeline.raw_stream_features(np.zeros((10, 5)))
        with pytest.raises(DataShapeError):
            edge.pipeline.raw_stream_features(np.zeros((10, 5)), stride=30)

    def test_short_wellformed_stream_input_still_empty(self, edge):
        out = edge.pipeline.raw_stream_features(np.zeros((10, 22)))
        assert out.shape == (0, edge.pipeline.n_features)

    def test_window_count_argument_checks(self):
        with pytest.raises(ConfigurationError):
            window_count(100, 0)
        with pytest.raises(ConfigurationError):
            window_count(100, 120, stride=0)
        assert window_count(100, 120) == 0
        assert window_count(240, 120) == 2


# ---------------------------------------------------------------------- #
# engine chunked sessions
# ---------------------------------------------------------------------- #


class TestEngineChunked:
    def test_acceptance_default_pipeline_100_sample_ticks(self, edge, recording):
        """The headline: 100-sample ticks at window_len=120, nothing lost."""
        data = recording.data
        ref = edge.engine.infer_stream(data)
        sizes = [100] * (data.shape[0] // 100)
        if data.shape[0] % 100:
            sizes.append(data.shape[0] % 100)
        names, confidences, accepted, session = _feed_chunks(
            edge.engine, data, sizes
        )
        assert names == ref.names
        assert accepted == list(ref.accepted)
        np.testing.assert_allclose(confidences, ref.confidences, **PARITY)
        assert session.windows_inferred == len(ref)

    @pytest.mark.parametrize("stride", [W, W // 2, W // 4, 1])
    def test_acceptance_strides(self, identity_engine, recording, rng, stride):
        """Verdict-sequence parity at strides {w, w/2, w/4, 1}."""
        data = recording.data
        ref = identity_engine.infer_stream(data, stride=stride)
        for sizes in ([100] * 7 + [20], _splits(data.shape[0], rng)):
            names, confidences, accepted, _ = _feed_chunks(
                identity_engine, data, sizes, stride=stride
            )
            assert names == ref.names
            assert accepted == list(ref.accepted)
            np.testing.assert_allclose(confidences, ref.confidences, **PARITY)

    def test_window_straddling_chunk_boundary(self, edge, recording):
        """80+80 samples: the only window spans both chunks."""
        data = recording.data[:160]
        session = edge.engine.open_stream()
        first = edge.engine.infer_chunk(session, data[:80])
        assert len(first) == 0
        assert session.pending_samples == 80
        second = edge.engine.infer_chunk(session, data[80:])
        assert len(second) == 1
        ref = edge.engine.infer_stream(data)
        assert second.names == ref.names
        np.testing.assert_allclose(
            second.confidences, ref.confidences, **PARITY
        )

    def test_empty_chunk_is_a_no_op(self, edge, recording):
        session = edge.engine.open_stream()
        batch = edge.engine.infer_chunk(session, np.empty((0, 22)))
        assert len(batch) == 0
        edge.engine.infer_chunk(session, recording.data[:240])
        assert session.windows_inferred == 2

    def test_float32_session_dtype(self, identity_engine, recording):
        ref = identity_engine.infer_stream(recording.data)
        session = identity_engine.open_stream(dtype=np.float32)
        batch = identity_engine.infer_chunk(session, recording.data)
        assert batch.distances.dtype == np.float32
        assert batch.names == ref.names

    def test_session_sugar_and_finish(self, edge, recording):
        session = edge.engine.open_stream()
        assert isinstance(session, StreamSession)
        assert session.stride == W
        batch = session.infer(recording.data[:250])
        assert len(batch) == 2
        session.finish()
        assert session.finished
        with pytest.raises(ConfigurationError):
            session.infer(recording.data[:10])

    def test_engine_without_pipeline_rejects_streams(self, edge):
        engine = InferenceEngine(edge.embedder, edge.ncm)
        with pytest.raises(ConfigurationError):
            engine.open_stream()

    def test_edge_device_chunked_entry_points(self, edge, recording):
        ref = edge.infer_stream(recording.data)
        session = edge.open_stream()
        batch = edge.infer_chunk(session, recording.data)
        tail = edge.finish_stream(session)
        assert batch.names + tail.names == ref.names


# ---------------------------------------------------------------------- #
# fleet serving with carry-over
# ---------------------------------------------------------------------- #


class TestFleetStepStream:
    def test_tail_no_longer_dropped_across_ticks(self, edge):
        """THE bug: 100-sample ticks at window_len=120 classified nothing."""
        server = FleetServer(edge.engine)
        server.connect("a")
        data = np.random.default_rng(9).normal(size=(300, 22))
        verdicts = server.step_stream({"a": data[:100]})
        assert verdicts == {"a": []}
        verdicts = server.step_stream({"a": data[100:200]})
        assert len(verdicts["a"]) == 1  # window [0, 120) straddled the ticks
        verdicts = server.step_stream({"a": data[200:300]})
        assert len(verdicts["a"]) == 1  # window [120, 240)
        assert server.session("a").stream.pending_samples == 60
        assert server.windows_served == 2

    def test_acceptance_fleet_matches_monolithic(self, edge, scenario):
        server = FleetServer(edge.engine)
        server.connect_many(["a", "b"])
        recordings = {
            "a": scenario.sensor_device.record("walk", 5.0).data,
            "b": scenario.sensor_device.record("run", 5.0).data,
        }
        got = {sid: [] for sid in recordings}
        for start in range(0, 600, 100):
            tick = {
                sid: data[start : start + 100]
                for sid, data in recordings.items()
            }
            for sid, session_verdicts in server.step_stream(tick).items():
                got[sid].extend(session_verdicts)
        for sid, data in recordings.items():
            ref = edge.engine.infer_stream(data)
            assert [v.activity for v in got[sid]] == ref.names
            assert [v.accepted for v in got[sid]] == list(ref.accepted)
            np.testing.assert_allclose(
                [v.confidence for v in got[sid]], ref.confidences, **PARITY
            )

    def test_ragged_per_session_chunk_lengths(self, edge, scenario, rng):
        server = FleetServer(edge.engine)
        server.connect_many(["a", "b", "c"])
        recordings = {
            "a": scenario.sensor_device.record("walk", 4.0).data,
            "b": scenario.sensor_device.record("still", 4.0).data,
            "c": scenario.sensor_device.record("run", 4.0).data,
        }
        splits = {sid: _splits(480, rng, hi=170) for sid in recordings}
        got = {sid: [] for sid in recordings}
        positions = {sid: 0 for sid in recordings}
        while any(splits.values()):
            tick = {}
            for sid, sizes in splits.items():
                if not sizes:
                    continue  # this session skips the tick entirely
                size = sizes.pop(0)
                tick[sid] = recordings[sid][positions[sid] : positions[sid] + size]
                positions[sid] += size
            for sid, session_verdicts in server.step_stream(tick).items():
                got[sid].extend(session_verdicts)
        for sid, data in recordings.items():
            ref = edge.engine.infer_stream(data)
            assert [v.activity for v in got[sid]] == ref.names

    def test_smoother_state_continuous_across_ticks(self, edge, scenario):
        server = FleetServer(edge.engine)
        server.connect("a")
        data = scenario.sensor_device.record("walk", 4.0).data
        displays = []
        for start in range(0, 480, 70):
            for verdict in server.step_stream({"a": data[start : start + 70]})["a"]:
                displays.append(verdict.display)
        ref = edge.engine.infer_stream(data[:480])
        smoother = HysteresisSmoother()
        assert displays == [smoother.update(name) for name in ref.names]

    def test_overlap_stride_matches_monolithic(self, identity_engine, scenario):
        server = FleetServer(identity_engine)
        server.connect("a")
        data = scenario.sensor_device.record("walk", 3.0).data
        got = []
        for start in range(0, 360, 100):
            got += server.step_stream(
                {"a": data[start : start + 100]}, stride=30
            )["a"]
        ref = identity_engine.infer_stream(data, stride=30)
        # only complete windows of the 360 received samples are out so far
        assert [v.activity for v in got] == ref.names[: len(got)]
        assert len(got) == (360 - W) // 30 + 1

    def test_finish_stream_flushes_held_back_windows(self, edge, scenario):
        """Bounded-lookahead denoising holds the last windows until flush."""
        engine = _engine_with_denoiser(edge, MovingAverageFilter(5))
        server = FleetServer(engine)
        server.connect("a")
        data = scenario.sensor_device.record("walk", 3.0).data
        got = []
        for start in range(0, 360, 90):
            got += server.step_stream({"a": data[start : start + 90]}, stride=30)["a"]
        flushed = server.finish_stream("a")
        ref = engine.infer_stream(data, stride=30)
        assert len(flushed) >= 1  # the lookahead held back the last window
        assert [v.activity for v in got + flushed] == ref.names
        assert server.windows_served == len(ref.names)
        assert server.session("a").stream is None  # closed; next tick restarts
        assert server.finish_stream("a") == []  # no open stream -> no-op

    def test_chunk_validation_before_any_state_advances(self, edge, recording):
        server = FleetServer(edge.engine)
        server.connect_many(["a", "b"])
        tick = {"a": recording.data[:240], "b": np.zeros((240, 5))}
        with pytest.raises(DataShapeError, match="session 'b'"):
            server.step_stream(tick)
        # up-front validation: session a's stream state never advanced
        assert server.session("a").stream is None
        assert server.ticks == 0 and server.windows_served == 0

    def test_cross_session_channel_consistency(self, edge, recording):
        server = FleetServer(edge.engine)
        server.connect_many(["a", "b"])
        with pytest.raises(DataShapeError, match="differs from the batch"):
            server.step_stream(
                {"a": recording.data[:100], "b": np.zeros((100, 21))}
            )

    def test_cross_tick_channel_consistency(self, edge, identity_engine):
        # identity pipeline has a custom extractor? no - use engine whose
        # expected channels pass, then mutate the session's locked count.
        server = FleetServer(edge.engine)
        server.connect("a")
        server.step_stream({"a": np.zeros((50, 22))})
        server.session("a").stream.state.n_channels = 21  # simulate drift
        with pytest.raises(DataShapeError, match="started with"):
            server.step_stream({"a": np.zeros((50, 22))})

    def test_stride_switch_mid_stream_rejected(self, edge, recording):
        server = FleetServer(edge.engine)
        server.connect("a")
        server.step_stream({"a": recording.data[:100]})
        with pytest.raises(ConfigurationError, match="mid-stream"):
            server.step_stream({"a": recording.data[100:200]}, stride=60)

    def test_counters_untouched_when_engine_fails(
        self, edge, recording, monkeypatch
    ):
        server = FleetServer(edge.engine)
        server.connect("a")

        def boom(features):
            raise RuntimeError("model fell over")

        monkeypatch.setattr(server.engine, "infer_features", boom)
        with pytest.raises(RuntimeError):
            server.step_stream({"a": recording.data[:240]})
        assert server.ticks == 0
        assert server.windows_served == 0
        assert server.serve_ms == 0.0

    def test_session_reset_drops_stream_state(self, edge, recording):
        server = FleetServer(edge.engine)
        session = server.connect("a")
        server.step_stream({"a": recording.data[:100]})
        assert session.stream is not None
        session.reset()
        assert session.stream is None


# ---------------------------------------------------------------------- #
# runtime accounting and the evaluation protocol
# ---------------------------------------------------------------------- #


class TestRuntimeAndProtocolChunked:
    def test_runtime_charges_chunked_windows(self, edge, recording):
        runtime = EdgeRuntime(edge)
        session = runtime.open_stream()
        for start in range(0, recording.data.shape[0], 100):
            runtime.infer_chunk(session, recording.data[start : start + 100])
        runtime.finish_stream(session)
        ref = edge.engine.infer_stream(recording.data)
        assert runtime.stats.inferences == len(ref)
        assert runtime.stats.compute_energy_joules > 0.0

    def test_stream_protocol_chunked_matches_monolithic(self, edge, scenario):
        segments = [
            ("walk", scenario.sensor_device.record("walk", 3.0).data),
            ("still", scenario.sensor_device.record("still", 2.0).data),
        ]
        mono = run_stream_protocol(edge.engine, segments)
        chunked = run_stream_protocol(edge.engine, segments, chunk_len=100)
        assert chunked.n_windows == mono.n_windows
        assert chunked.overall_accuracy == mono.overall_accuracy
        assert chunked.per_activity_accuracy == mono.per_activity_accuracy
        assert chunked.rejected_fraction == mono.rejected_fraction
        assert chunked.mean_confidence == pytest.approx(
            mono.mean_confidence, abs=1e-9
        )

    def test_stream_protocol_chunk_len_validation(self, edge, recording):
        with pytest.raises(ConfigurationError):
            run_stream_protocol(
                edge.engine, [("walk", recording.data)], chunk_len=0
            )
