"""Unit tests for the transfer package and Cloud initialization."""

import numpy as np
import pytest

from repro.core import (
    CloudConfig,
    CloudInitializer,
    CohortHead,
    InferenceEngine,
    OpenSetNCM,
    TransferPackage,
    engine_from_head,
)
from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    SerializationError,
)
from repro.nn import SharedBackbone, TrainConfig
from repro.serving import engine_from_package


class TestTransferPackage:
    def test_component_sizes_present(self, scenario):
        sizes = scenario.package.component_sizes()
        assert set(sizes) == {"pipeline", "model", "support_set"}
        assert all(v > 0 for v in sizes.values())

    def test_total_is_sum(self, scenario):
        package = scenario.package
        assert package.size_bytes() == sum(package.component_sizes().values())

    def test_describe_mentions_total(self, scenario):
        text = scenario.package.describe()
        assert "total" in text
        assert "model" in text

    def test_support_set_dominated_by_capacity(self, scenario):
        sizes = scenario.package.component_sizes()
        store = scenario.package.support_set
        expected = store.total_samples * store.n_features * 4
        assert sizes["support_set"] == expected

    def test_save_load_roundtrip(self, scenario, tmp_path, rng):
        package = scenario.package
        path = tmp_path / "package.npz"
        package.save(path)
        loaded = TransferPackage.load(path)

        x = rng.normal(size=(3, package.pipeline.n_features))
        assert np.allclose(
            loaded.embedder.embed(x), package.embedder.embed(x)
        )
        assert loaded.support_set.class_names == package.support_set.class_names
        windows = rng.normal(size=(2, 120, 22))
        assert np.allclose(
            loaded.pipeline.process_windows(windows),
            package.pipeline.process_windows(windows),
        )

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(SerializationError):
            TransferPackage.load(path)

    def test_serialized_bytes_close_to_footprint(self, scenario):
        package = scenario.package
        wire = package.serialized_bytes()
        logical = package.size_bytes()
        # The wire format is float32 npz: same order of magnitude.
        assert 0.5 * logical < wire < 3.0 * logical

    def test_save_and_wire_format_share_one_encoding(
        self, scenario, tmp_path
    ):
        """save() and serialized_bytes() differ only in dtype casting."""
        package = scenario.package
        path = tmp_path / "package.npz"
        package.save(path)
        saved = np.load(path)
        wire = package._collect_arrays(dtype=np.float32)
        assert set(saved.files) == set(wire)
        for key in saved.files:
            if key.startswith(("model/", "support/")):
                assert wire[key].dtype == np.float32
                np.testing.assert_allclose(
                    saved[key].astype(np.float32), wire[key], rtol=0, atol=0
                )


class TestSharedBackboneSplit:
    def test_fingerprint_stable_across_clones(self, scenario):
        backbone = scenario.package.backbone()
        clone = scenario.package.embedder.clone()
        assert (
            SharedBackbone.fingerprint_of(clone.network)
            == backbone.fingerprint
        )
        assert backbone.fingerprint == backbone.fingerprint  # cached

    def test_fingerprint_tracks_weight_content(self, scenario):
        backbone = scenario.package.backbone()
        perturbed = scenario.package.embedder.clone()
        state = {
            key: value.copy()
            for key, value in perturbed.network.state_dict().items()
        }
        first = sorted(state)[0]
        state[first] = state[first] + 1e-3
        perturbed.network.load_state_dict(state)
        assert (
            SharedBackbone.fingerprint_of(perturbed.network)
            != backbone.fingerprint
        )

    def test_split_rebuild_matches_package_engine(self, scenario, rng):
        package = scenario.package
        backbone, head = package.split()
        rebuilt = engine_from_head(backbone, head)
        # the backbone is shared by object, not copied
        assert rebuilt.embedder.network is package.embedder.network
        ref = engine_from_package(package)
        feats = package.pipeline.process_windows(
            scenario.base_test.windows[:6]
        )
        got, want = rebuilt.infer_features(feats), ref.infer_features(feats)
        assert got.names == want.names
        np.testing.assert_allclose(
            got.distances, want.distances, rtol=0, atol=1e-9
        )

    def test_split_with_open_set_carries_thresholds(self, scenario):
        package = scenario.package
        backbone, head = package.split(open_set=OpenSetNCM(ratio=0.3))
        assert head.thresholds is not None and head.ratio == 0.3
        rebuilt = engine_from_head(backbone, head)
        ref_os = OpenSetNCM(ratio=0.3)
        ref_os.fit_from_support_set(package.embedder, package.support_set)
        ref = InferenceEngine(
            package.embedder, ref_os, pipeline=package.pipeline
        )
        feats = package.pipeline.process_windows(
            scenario.base_test.windows[:6]
        )
        got, want = rebuilt.infer_features(feats), ref.infer_features(feats)
        assert got.names == want.names
        assert list(got.accepted) == list(want.accepted)
        np.testing.assert_allclose(
            got.distances, want.distances, rtol=0, atol=1e-9
        )

    def test_head_carries_support_metadata_and_is_light(self, scenario):
        package = scenario.package
        backbone, head = package.split()
        assert head.class_names == package.support_set.class_names
        assert head.support_counts == package.support_set.counts()
        assert head.support_capacity == package.support_set.capacity_per_class
        assert head.size_bytes() < backbone.size_bytes()

    def test_head_shape_validation(self, scenario):
        package = scenario.package
        with pytest.raises(NotFittedError, match="prototypes"):
            CohortHead(
                class_names=("a", "b"),
                prototypes=np.zeros((3, 8)),
                pipeline=package.pipeline,
            )
        backbone, head = package.split()
        wrong_dim = CohortHead(
            class_names=head.class_names,
            prototypes=np.zeros((len(head.class_names), 3)),
            pipeline=head.pipeline,
        )
        with pytest.raises(NotFittedError, match="dims"):
            engine_from_head(backbone, wrong_dim)


class TestCloudInitializer:
    def test_pretrain_learns_base_activities(self, scenario):
        report = scenario.pretrain_report
        assert report.train_accuracy > 0.9
        assert report.class_names == ("drive", "escooter", "run", "still", "walk")

    def test_loss_decreased_during_pretraining(self, scenario):
        history = scenario.pretrain_report.history
        assert history.total[-1] < history.total[0]

    def test_support_set_covers_all_classes(self, scenario):
        store = scenario.package.support_set
        assert store.class_names == scenario.pretrain_report.class_names
        assert all(count > 0 for count in store.counts().values())

    def test_support_capacity_respected(self, scenario):
        store = scenario.package.support_set
        assert max(store.counts().values()) <= store.capacity_per_class

    def test_pipeline_fitted(self, scenario):
        assert scenario.package.pipeline.is_fitted

    def test_generates_campaign_when_none_given(self):
        cloud = CloudInitializer(
            CloudConfig(
                backbone_dims=(32,),
                embedding_dim=8,
                train=TrainConfig(epochs=2, batch_pairs=16),
                support_capacity=10,
            ),
            rng=3,
        )
        package, report = cloud.pretrain(
            n_users=2, windows_per_user_per_activity=4
        )
        assert report.n_train_windows == 2 * 4 * 5
        assert package.support_set.n_classes == 5

    def test_empty_dataset_rejected(self, tiny_campaign):
        cloud = CloudInitializer(rng=0)
        empty = tiny_campaign.subset(np.zeros(tiny_campaign.n_windows, dtype=bool))
        with pytest.raises(ConfigurationError):
            cloud.pretrain(empty)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CloudConfig(embedding_dim=0)
        with pytest.raises(ConfigurationError):
            CloudConfig(support_capacity=0)

    def test_n_parameters_reported(self, scenario):
        assert scenario.pretrain_report.n_parameters == (
            scenario.package.embedder.n_parameters()
        )
