"""Unit tests for the transfer package and Cloud initialization."""

import numpy as np
import pytest

from repro.core import CloudConfig, CloudInitializer, TransferPackage
from repro.exceptions import ConfigurationError, SerializationError
from repro.nn import TrainConfig


class TestTransferPackage:
    def test_component_sizes_present(self, scenario):
        sizes = scenario.package.component_sizes()
        assert set(sizes) == {"pipeline", "model", "support_set"}
        assert all(v > 0 for v in sizes.values())

    def test_total_is_sum(self, scenario):
        package = scenario.package
        assert package.size_bytes() == sum(package.component_sizes().values())

    def test_describe_mentions_total(self, scenario):
        text = scenario.package.describe()
        assert "total" in text
        assert "model" in text

    def test_support_set_dominated_by_capacity(self, scenario):
        sizes = scenario.package.component_sizes()
        store = scenario.package.support_set
        expected = store.total_samples * store.n_features * 4
        assert sizes["support_set"] == expected

    def test_save_load_roundtrip(self, scenario, tmp_path, rng):
        package = scenario.package
        path = tmp_path / "package.npz"
        package.save(path)
        loaded = TransferPackage.load(path)

        x = rng.normal(size=(3, package.pipeline.n_features))
        assert np.allclose(
            loaded.embedder.embed(x), package.embedder.embed(x)
        )
        assert loaded.support_set.class_names == package.support_set.class_names
        windows = rng.normal(size=(2, 120, 22))
        assert np.allclose(
            loaded.pipeline.process_windows(windows),
            package.pipeline.process_windows(windows),
        )

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(SerializationError):
            TransferPackage.load(path)

    def test_serialized_bytes_close_to_footprint(self, scenario):
        package = scenario.package
        wire = package.serialized_bytes()
        logical = package.size_bytes()
        # The wire format is float32 npz: same order of magnitude.
        assert 0.5 * logical < wire < 3.0 * logical


class TestCloudInitializer:
    def test_pretrain_learns_base_activities(self, scenario):
        report = scenario.pretrain_report
        assert report.train_accuracy > 0.9
        assert report.class_names == ("drive", "escooter", "run", "still", "walk")

    def test_loss_decreased_during_pretraining(self, scenario):
        history = scenario.pretrain_report.history
        assert history.total[-1] < history.total[0]

    def test_support_set_covers_all_classes(self, scenario):
        store = scenario.package.support_set
        assert store.class_names == scenario.pretrain_report.class_names
        assert all(count > 0 for count in store.counts().values())

    def test_support_capacity_respected(self, scenario):
        store = scenario.package.support_set
        assert max(store.counts().values()) <= store.capacity_per_class

    def test_pipeline_fitted(self, scenario):
        assert scenario.package.pipeline.is_fitted

    def test_generates_campaign_when_none_given(self):
        cloud = CloudInitializer(
            CloudConfig(
                backbone_dims=(32,),
                embedding_dim=8,
                train=TrainConfig(epochs=2, batch_pairs=16),
                support_capacity=10,
            ),
            rng=3,
        )
        package, report = cloud.pretrain(
            n_users=2, windows_per_user_per_activity=4
        )
        assert report.n_train_windows == 2 * 4 * 5
        assert package.support_set.n_classes == 5

    def test_empty_dataset_rejected(self, tiny_campaign):
        cloud = CloudInitializer(rng=0)
        empty = tiny_campaign.subset(np.zeros(tiny_campaign.n_windows, dtype=bool))
        with pytest.raises(ConfigurationError):
            cloud.pretrain(empty)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CloudConfig(embedding_dim=0)
        with pytest.raises(ConfigurationError):
            CloudConfig(support_capacity=0)

    def test_n_parameters_reported(self, scenario):
        assert scenario.pretrain_report.n_parameters == (
            scenario.package.embedder.n_parameters()
        )
