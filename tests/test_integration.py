"""Integration tests: full paper flows across every subsystem."""

import numpy as np
import pytest

from repro.core import (
    CloudConfig,
    MagnetoPlatform,
    NetworkLink,
    TransferPackage,
)
from repro.datasets import activity_windows, build_edge_scenario
from repro.edge_runtime import EdgeRuntime, MagnetoApp, MIDRANGE_PHONE
from repro.eval import accuracy
from repro.exceptions import PrivacyViolationError
from repro.nn import TrainConfig
from repro.sensors import SensorDevice, sample_user


class TestFullLifecycle:
    """Figure 2 end-to-end: Cloud pre-train -> transfer -> Edge operate."""

    def test_cloud_to_edge_to_inference_to_learning(self, scenario):
        edge = scenario.fresh_edge(rng=10)

        # Edge inference on the new user's base activities.
        feats = edge.pipeline.process_windows(scenario.base_test.windows)
        base_acc = accuracy(scenario.base_test.labels, edge.infer_features(feats))
        assert base_acc > 0.85

        # Learn two new activities in sequence (Definition 2).
        for activity in ("gesture_hi", "jump"):
            rec = scenario.sensor_device.record(activity, 20.0)
            edge.learn_activity(activity, rec)

        assert edge.classes == (
            "drive", "escooter", "run", "still", "walk", "gesture_hi", "jump"
        )

        # Both new activities recognized, old ones retained.
        for activity in ("gesture_hi", "jump", "still", "walk"):
            rec = scenario.sensor_device.record(activity, 4.0)
            majority, _ = edge.infer_recording(rec)
            assert majority == activity, f"failed on {activity}"

        # Definition 1 held throughout.
        assert edge.guard.user_bytes_sent_to_cloud() == 0

    def test_package_survives_disk_roundtrip_then_operates(
        self, scenario, tmp_path
    ):
        path = tmp_path / "magneto.npz"
        scenario.package.save(path)
        loaded = TransferPackage.load(path)

        from repro.core import EdgeDevice

        edge = EdgeDevice(rng=3)
        edge.install(loaded)
        rec = scenario.sensor_device.record("run", 3.0)
        majority, _ = edge.infer_recording(rec)
        assert majority == "run"

        rec = scenario.sensor_device.record("gesture_circle", 20.0)
        edge.learn_activity("gesture_circle", rec)
        assert "gesture_circle" in edge.classes


class TestAppOnRuntime:
    """The demo app running on the resource-accounted runtime."""

    def test_demo_with_resource_accounting(self, scenario):
        edge = scenario.fresh_edge(rng=11)
        runtime = EdgeRuntime(edge, MIDRANGE_PHONE)
        app = MagnetoApp(edge, scenario.sensor_device)

        app.run_demo_scenario(
            new_label="wave", performed_new_activity="gesture_hi",
            warmup_activities=["still"], infer_s=3.0, record_s=15.0,
        )
        runtime._charge_retraining()  # account the session explicitly
        assert runtime.check_storage() > 0
        assert "wave" in edge.classes


class TestMultiUserIsolation:
    """Two users on two devices personalize independently."""

    def test_two_edges_diverge_without_interference(self, scenario):
        user_a = sample_user(2001, rng=1)
        user_b = sample_user(2002, rng=2)
        device_a = SensorDevice(user=user_a, rng=3)
        device_b = SensorDevice(user=user_b, rng=4)

        edge_a = scenario.fresh_edge(rng=5)
        edge_b = scenario.fresh_edge(rng=6)

        edge_a.learn_activity("gesture_hi", device_a.record("gesture_hi", 20.0))
        edge_b.learn_activity("jump", device_b.record("jump", 20.0))

        assert "gesture_hi" in edge_a.classes
        assert "gesture_hi" not in edge_b.classes
        assert "jump" in edge_b.classes
        assert "jump" not in edge_a.classes


class TestPrivacyEndToEnd:
    def test_only_transfer_is_the_initial_package(self, scenario):
        link = NetworkLink(latency_ms=30.0, bandwidth_mbps=40.0, rng=0)
        edge = scenario.fresh_edge(link=link, rng=7)

        rec = scenario.sensor_device.record("gesture_hi", 20.0)
        edge.learn_activity("gesture_hi", rec)
        for _ in range(3):
            edge.infer_window(scenario.sensor_device.record("walk", 1.0).data)

        log = edge.guard.log
        assert len(log) == 1  # exactly one transfer happened, ever
        assert log[0].direction == "cloud->edge"

        with pytest.raises(PrivacyViolationError):
            edge.attempt_cloud_upload(rec)
        assert edge.guard.user_bytes_sent_to_cloud() == 0


class TestCalibrationImprovesAtypicalUser:
    """E6's mechanism at integration scale: an atypical user gains accuracy
    on a calibrated activity."""

    def test_calibration_gain(self):
        scenario = build_edge_scenario(
            cloud_config=CloudConfig(
                backbone_dims=(64, 32),
                embedding_dim=16,
                train=TrainConfig(epochs=12, batch_pairs=32, lr=1e-3),
                support_capacity=25,
            ),
            n_users=4,
            windows_per_user_per_activity=12,
            base_test_windows_per_activity=12,
            edge_user_atypical=True,
            rng=1234,
        )
        edge = scenario.fresh_edge(rng=8)
        pipeline = edge.pipeline

        # Accuracy over all base activities before calibration.
        feats = pipeline.process_windows(scenario.base_test.windows)
        acc_before = accuracy(
            scenario.base_test.labels, edge.infer_features(feats)
        )

        # Calibrate every base activity with the user's own data.
        for name in scenario.base_test.class_names:
            windows = activity_windows(scenario.edge_user, name, 15, rng=name.__hash__() % 1000)
            edge.calibrate_activity(name, pipeline.process_windows(windows))

        acc_after = accuracy(
            scenario.base_test.labels, edge.infer_features(feats)
        )
        assert acc_after >= acc_before
