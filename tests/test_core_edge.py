"""Unit tests for the Edge device: inference, incremental learning, privacy."""

import numpy as np
import pytest

from repro.core import EdgeDevice, NetworkLink
from repro.datasets import activity_windows, train_test_windows
from repro.exceptions import (
    DataShapeError,
    NotFittedError,
    PrivacyViolationError,
)
from repro.sensors import SensorDevice


class TestInstallation:
    def test_not_ready_before_install(self):
        edge = EdgeDevice()
        assert not edge.is_ready
        with pytest.raises(NotFittedError):
            edge.infer_window(np.zeros((120, 22)))

    def test_install_makes_ready(self, edge):
        assert edge.is_ready
        assert edge.classes == ("drive", "escooter", "run", "still", "walk")

    def test_install_records_cloud_to_edge_transfer(self, edge):
        log = edge.guard.log
        assert len(log) == 1
        assert log[0].direction == "cloud->edge"
        assert not log[0].contains_user_data

    def test_install_over_link_costs_time(self, scenario):
        link = NetworkLink(latency_ms=100.0, bandwidth_mbps=10.0, rng=0)
        edge = scenario.fresh_edge(link=link)
        assert edge.guard.log[0].simulated_ms >= 100.0


class TestInference:
    def test_window_prediction_fields(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 1.0)
        result = edge.infer_window(rec.data)
        assert result.activity in edge.classes
        assert 0.0 <= result.confidence <= 1.0
        assert result.latency_ms > 0.0
        assert set(result.distances) == set(edge.classes)

    def test_top_k(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 1.0)
        result = edge.infer_window(rec.data)
        top2 = result.top(2)
        assert len(top2) == 2
        assert top2[0][1] <= top2[1][1]
        assert top2[0][0] == result.activity

    def test_recognizes_base_activities(self, edge, scenario):
        correct = 0
        for activity in edge.classes:
            rec = scenario.sensor_device.record(activity, 4.0)
            majority, _ = edge.infer_recording(rec)
            correct += majority == activity
        assert correct >= 4  # at least 4/5 majority-vote correct

    def test_infer_recording_per_window_names(self, edge, scenario):
        rec = scenario.sensor_device.record("still", 3.0)
        majority, names = edge.infer_recording(rec)
        assert len(names) == 3
        assert majority in names

    def test_too_short_recording_rejected(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 0.3)
        with pytest.raises(DataShapeError):
            edge.infer_recording(rec)

    def test_non_2d_window_rejected(self, edge):
        with pytest.raises(DataShapeError):
            edge.infer_window(np.zeros(120))

    def test_latency_is_milliseconds_scale(self, edge, scenario):
        # E1's claim: prediction latency of a few ms on a laptop-scale model.
        rec = scenario.sensor_device.record("walk", 1.0)
        edge.infer_window(rec.data)  # warm up
        latencies = [edge.infer_window(rec.data).latency_ms for _ in range(5)]
        assert np.median(latencies) < 50.0


class TestIncrementalLearning:
    def test_learn_new_activity_from_recording(self, edge, scenario):
        rec = scenario.sensor_device.record("gesture_hi", 20.0)
        result = edge.learn_activity("gesture_hi", rec)
        assert result.operation == "learn"
        assert "gesture_hi" in edge.classes
        assert edge.classes[:5] == ("drive", "escooter", "run", "still", "walk")

    def test_new_activity_recognized_after_learning(self, edge, scenario):
        train = scenario.sensor_device.record("gesture_hi", 20.0)
        edge.learn_activity("gesture_hi", train)
        test = scenario.sensor_device.record("gesture_hi", 4.0)
        majority, _ = edge.infer_recording(test)
        assert majority == "gesture_hi"

    def test_old_classes_survive_update(self, edge, scenario):
        """The headline no-catastrophic-forgetting property."""
        feats = edge.pipeline.process_windows(scenario.base_test.windows)
        before = edge.infer_features(feats)
        acc_before = float(np.mean(before == scenario.base_test.labels))

        rec = scenario.sensor_device.record("gesture_hi", 20.0)
        edge.learn_activity("gesture_hi", rec)

        after = edge.infer_features(feats)
        acc_after = float(np.mean(after == scenario.base_test.labels))
        assert acc_before > 0.8
        assert acc_after > acc_before - 0.15

    def test_learn_from_features_directly(self, edge, scenario):
        windows = activity_windows(scenario.edge_user, "jump", 20, rng=9)
        feats = edge.pipeline.process_windows(windows)
        edge.learn_activity("jump", feats)
        assert "jump" in edge.classes

    def test_learning_grows_footprint(self, edge, scenario):
        before = edge.footprint_bytes()
        rec = scenario.sensor_device.record("gesture_hi", 20.0)
        edge.learn_activity("gesture_hi", rec)
        assert edge.footprint_bytes() > before

    def test_reinforce_existing_activity(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 10.0)
        result = edge.reinforce_activity("walk", rec)
        assert result.operation == "extend"
        assert edge.classes == ("drive", "escooter", "run", "still", "walk")


class TestCalibration:
    def test_calibrate_replaces_and_retrains(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 15.0)
        n_classes_before = len(edge.classes)
        result = edge.calibrate_activity("walk", rec)
        assert result.operation == "calibrate"
        assert len(edge.classes) == n_classes_before

    def test_calibrated_class_still_recognized(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 15.0)
        edge.calibrate_activity("walk", rec)
        test = scenario.sensor_device.record("walk", 4.0)
        majority, _ = edge.infer_recording(test)
        assert majority == "walk"


class TestPrivacy:
    def test_upload_of_recording_blocked(self, edge, scenario):
        rec = scenario.sensor_device.record("walk", 2.0)
        with pytest.raises(PrivacyViolationError):
            edge.attempt_cloud_upload(rec)

    def test_upload_of_features_blocked(self, edge, rng):
        with pytest.raises(PrivacyViolationError):
            edge.attempt_cloud_upload(rng.normal(size=(10, 80)))

    def test_no_user_bytes_leak_even_after_learning(self, edge, scenario):
        rec = scenario.sensor_device.record("gesture_hi", 20.0)
        edge.learn_activity("gesture_hi", rec)
        assert edge.guard.user_bytes_sent_to_cloud() == 0


class TestFootprint:
    def test_component_breakdown(self, edge):
        sizes = edge.component_sizes()
        assert set(sizes) == {"pipeline", "model", "support_set"}

    def test_footprint_well_under_paper_budget(self, edge):
        # Test-scale model; the full-size check lives in the benchmark.
        assert edge.footprint_bytes() < 5 * 1024 * 1024
