"""Unit tests for the composed pre-processing pipeline."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError, SerializationError
from repro.preprocessing import (
    FeatureConfig,
    IdentityFilter,
    MinMaxNormalizer,
    PreprocessingPipeline,
)
from repro.sensors import SensorDevice


class TestFitAndProcess:
    def test_unfitted_pipeline_refuses_to_process(self, tiny_campaign):
        pipeline = PreprocessingPipeline()
        with pytest.raises(NotFittedError):
            pipeline.process_windows(tiny_campaign.windows[:2])

    def test_fit_then_process_shape(self, fitted_pipeline, tiny_campaign):
        out = fitted_pipeline.process_windows(tiny_campaign.windows[:5])
        assert out.shape == (5, 80)

    def test_features_standardized_on_fit_data(self, fitted_pipeline, tiny_campaign):
        out = fitted_pipeline.process_windows(tiny_campaign.windows)
        assert abs(out.mean()) < 0.1
        # Mean per-feature std near 1 (constant features map to 0).
        assert 0.5 < out.std() < 1.5

    def test_process_window_matches_batch(self, fitted_pipeline, tiny_campaign):
        w = tiny_campaign.windows[3]
        single = fitted_pipeline.process_window(w)
        batch = fitted_pipeline.process_windows(tiny_campaign.windows[3:4])[0]
        assert np.allclose(single, batch)

    def test_process_recording(self, fitted_pipeline):
        rec = SensorDevice(rng=4).record("walk", 3.0)
        out = fitted_pipeline.process_recording(rec)
        assert out.shape == (3, 80)

    def test_short_recording_yields_empty(self, fitted_pipeline):
        rec = SensorDevice(rng=4).record("walk", 0.5)
        out = fitted_pipeline.process_recording(rec)
        assert out.shape == (0, 80)

    def test_n_features_property(self, fitted_pipeline):
        assert fitted_pipeline.n_features == 80

    def test_custom_feature_config(self, tiny_campaign):
        cfg = FeatureConfig(signals=("accel_mag",), stats=("mean", "std"))
        pipeline = PreprocessingPipeline(feature_config=cfg)
        pipeline.fit_normalizer(tiny_campaign.windows[:10])
        out = pipeline.process_windows(tiny_campaign.windows[:3])
        assert out.shape == (3, 2)

    def test_invalid_window_len_rejected(self):
        with pytest.raises(ConfigurationError):
            PreprocessingPipeline(window_len=0)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            PreprocessingPipeline(stride=0)


class TestSerialization:
    def test_roundtrip_preserves_output(self, fitted_pipeline, tiny_campaign):
        rebuilt = PreprocessingPipeline.from_dict(fitted_pipeline.to_dict())
        a = fitted_pipeline.process_windows(tiny_campaign.windows[:4])
        b = rebuilt.process_windows(tiny_campaign.windows[:4])
        assert np.allclose(a, b)

    def test_roundtrip_with_custom_components(self, tiny_campaign):
        pipeline = PreprocessingPipeline(
            denoiser=IdentityFilter(),
            window_len=60,
            stride=30,
            normalizer=MinMaxNormalizer(clip=True),
        )
        pipeline.fit_normalizer(tiny_campaign.windows[:10, :60, :])
        rebuilt = PreprocessingPipeline.from_dict(pipeline.to_dict())
        assert rebuilt.window_len == 60
        assert rebuilt.stride == 30
        assert isinstance(rebuilt.denoiser, IdentityFilter)
        assert isinstance(rebuilt.normalizer, MinMaxNormalizer)
        assert rebuilt.normalizer.clip is True

    def test_unfitted_cannot_serialize(self):
        with pytest.raises(NotFittedError):
            PreprocessingPipeline().to_dict()

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            PreprocessingPipeline.from_dict({"denoiser": {"kind": "identity"}})

    def test_size_bytes_positive_and_modest(self, fitted_pipeline):
        size = fitted_pipeline.size_bytes()
        assert 0 < size < 100_000  # the pipeline is a few kB of JSON


class TestDenoiserIntegration:
    def test_denoising_changes_features(self, tiny_campaign):
        with_filter = PreprocessingPipeline()
        without = PreprocessingPipeline(denoiser=IdentityFilter())
        with_filter.fit_normalizer(tiny_campaign.windows[:10])
        without.fit_normalizer(tiny_campaign.windows[:10])
        a = with_filter.process_windows(tiny_campaign.windows[:3])
        b = without.process_windows(tiny_campaign.windows[:3])
        assert not np.allclose(a, b)
