"""InferenceEngine.infer_stream: parity with the windowed engine path.

The streaming entry point's contract: at the non-overlapping stride its
verdicts are *identical* (distances to 1e-9, labels/accepts exactly) to
``segment_recording`` + ``infer_windows`` on the same recording; at
overlapping strides it matches the continuous-denoise batch oracle
(``process_recording`` semantics).  Plus the serving/accounting layers
rewired through it: ``FleetServer.step_stream``, ``EdgeRuntime``,
``run_stream_protocol`` and the reduced-precision distance path.
"""

import numpy as np
import pytest

from repro.core import FleetServer, HysteresisSmoother, InferenceEngine
from repro.edge_runtime import EdgeRuntime
from repro.eval import run_stream_protocol
from repro.exceptions import ConfigurationError, DataShapeError
from repro.preprocessing import segment_recording, sliding_windows

PARITY = dict(rtol=0.0, atol=1e-9)


@pytest.fixture
def recording(scenario):
    return scenario.sensor_device.record("walk", 6.0)


class TestInferStreamParity:
    def test_matches_segment_plus_infer_windows(self, edge, recording):
        """The acceptance contract, with the default Butterworth denoiser."""
        ref = edge.infer_windows(segment_recording(recording))
        got = edge.infer_stream(recording.data)
        np.testing.assert_allclose(got.distances, ref.distances, **PARITY)
        np.testing.assert_allclose(got.proba, ref.proba, **PARITY)
        np.testing.assert_allclose(got.confidences, ref.confidences, **PARITY)
        assert np.array_equal(got.labels, ref.labels)
        assert np.array_equal(got.nearest, ref.nearest)
        assert np.array_equal(got.accepted, ref.accepted)
        assert got.names == ref.names

    @pytest.mark.parametrize("stride", [60, 30, 17])
    def test_overlapping_stride_matches_continuous_denoise_oracle(
        self, edge, recording, stride
    ):
        """Overlap: denoise once over the stream, then per-window batch."""
        pipeline = edge.pipeline
        denoised = pipeline.denoiser.apply(recording.data)
        windows = sliding_windows(denoised, pipeline.window_len, stride)
        features = pipeline.normalizer.transform(
            pipeline.extractor.extract(windows)
        )
        ref = edge.engine.infer_features(features)
        got = edge.infer_stream(recording.data, stride=stride)
        assert len(got) == windows.shape[0] > len(segment_recording(recording))
        np.testing.assert_allclose(got.distances, ref.distances, **PARITY)
        assert np.array_equal(got.labels, ref.labels)
        assert np.array_equal(got.accepted, ref.accepted)

    def test_stream_too_short_yields_empty_batch(self, edge):
        batch = edge.infer_stream(np.zeros((50, 22)))
        assert len(batch) == 0
        assert batch.distances.shape == (0, len(edge.classes))

    def test_engine_without_pipeline_rejects_stream(self, edge):
        engine = InferenceEngine(edge.embedder, edge.ncm)
        with pytest.raises(ConfigurationError):
            engine.infer_stream(np.zeros((240, 22)))

    def test_rejects_non_2d_input(self, edge):
        with pytest.raises(DataShapeError):
            edge.infer_stream(np.zeros((2, 120, 22)))

    def test_infer_recording_majority_via_stream(self, edge, recording):
        majority, names = edge.infer_recording(recording)
        batch = edge.infer_stream(recording.data)
        assert names == batch.names
        assert majority in names


class TestReducedPrecisionDistances:
    def test_float32_distance_matrix(self, edge, recording):
        ref = edge.infer_stream(recording.data)
        got = edge.infer_stream(recording.data, dtype=np.float32)
        assert got.distances.dtype == np.float32
        assert np.array_equal(got.labels, ref.labels)
        # float32 now runs the whole path (features, embedding, distances)
        # in 32 bits, so the budget covers the accumulated forward-pass
        # error — dominated by raw-cast quantization of offset-heavy
        # channels (barometer ~1000 hPa), see docs/precision.md.
        np.testing.assert_allclose(
            got.distances, ref.distances, rtol=0.1, atol=0.1
        )

    def test_per_dtype_prototype_cache(self, edge, recording):
        engine = edge.engine
        edge.infer_stream(recording.data, dtype=np.float32)
        assert engine._cached_sq_norms is not None
        cast, cast_sq = engine._prototype_norms(np.float32)
        assert cast.dtype == np.float32
        # repeated calls reuse the cached cast
        assert engine._prototype_norms(np.float32)[0] is cast
        engine.refresh()
        assert engine._cached_casts == {}

    def test_float64_path_untouched_by_dtype_plumbing(self, edge, recording):
        windows = segment_recording(recording)
        a = edge.engine.distances_from_embeddings(
            edge.embedder.embed(edge.pipeline.process_windows(windows))
        )
        assert a.dtype == np.float64


class TestFleetStreamServing:
    def test_step_stream_matches_per_session_stream(self, edge, scenario):
        server = FleetServer(edge.engine)
        server.connect_many(["a", "b", "c"])
        chunks = {
            "a": scenario.sensor_device.record("walk", 3.0).data,
            "b": scenario.sensor_device.record("still", 2.0).data,
            "c": scenario.sensor_device.record("run", 1.0).data,
        }
        verdicts = server.step_stream(chunks)
        assert set(verdicts) == {"a", "b", "c"}
        assert [len(verdicts[s]) for s in ("a", "b", "c")] == [3, 2, 1]
        for session_id, chunk in chunks.items():
            ref = edge.engine.infer_stream(chunk)
            smoother = HysteresisSmoother()
            for verdict, name, confidence, accepted in zip(
                verdicts[session_id], ref.names, ref.confidences, ref.accepted
            ):
                assert verdict.activity == name
                assert verdict.display == smoother.update(name)
                assert verdict.confidence == pytest.approx(float(confidence))
                assert verdict.accepted == bool(accepted)
        assert server.windows_served == 6
        assert server.ticks == 1

    def test_step_stream_overlap_produces_more_windows(self, edge, scenario):
        server = FleetServer(edge.engine)
        server.connect("a")
        chunk = scenario.sensor_device.record("walk", 2.0).data
        dense = server.step_stream({"a": chunk}, stride=30)
        # The zero-phase denoiser stream holds back its bounded lookahead
        # until the flush, so the overlap windows arrive across
        # step_stream + finish_stream.
        flushed = server.finish_stream("a")
        assert (
            len(dense["a"]) + len(flushed)
            == (chunk.shape[0] - 120) // 30 + 1
        )

    def test_step_stream_short_chunk_yields_no_verdicts(self, edge):
        server = FleetServer(edge.engine)
        server.connect("a")
        verdicts = server.step_stream({"a": np.zeros((50, 22))})
        assert verdicts == {"a": []}
        assert server.windows_served == 0
        assert server.ticks == 1

    def test_step_stream_unknown_session_raises(self, edge):
        server = FleetServer(edge.engine)
        with pytest.raises(ConfigurationError):
            server.step_stream({"ghost": np.zeros((240, 22))})

    def test_step_stream_rejects_bad_shape(self, edge):
        server = FleetServer(edge.engine)
        server.connect("a")
        with pytest.raises(DataShapeError):
            server.step_stream({"a": np.zeros(240)})


class TestRuntimeAndProtocol:
    def test_runtime_charges_streamed_windows(self, edge, recording):
        runtime = EdgeRuntime(edge)
        batch = runtime.infer_stream(recording.data)
        assert runtime.stats.inferences == len(batch) == 6
        assert runtime.stats.compute_energy_joules > 0.0

    def test_runtime_empty_stream_charges_nothing(self, edge):
        runtime = EdgeRuntime(edge)
        runtime.infer_stream(np.zeros((50, 22)))
        assert runtime.stats.inferences == 0

    def test_run_stream_protocol_bookkeeping(self, edge, scenario):
        segments = [
            ("walk", scenario.sensor_device.record("walk", 3.0).data),
            ("still", scenario.sensor_device.record("still", 2.0).data),
            ("walk", scenario.sensor_device.record("walk", 1.0).data),
        ]
        result = run_stream_protocol(edge.engine, segments)
        assert result.n_windows == 6
        assert set(result.per_activity_accuracy) == {"walk", "still"}
        assert 0.0 <= result.overall_accuracy <= 1.0
        assert 0.0 <= result.rejected_fraction <= 1.0
        # overall accuracy is the window-weighted mean of the per-activity ones
        weighted = (
            result.per_activity_accuracy["walk"] * 4
            + result.per_activity_accuracy["still"] * 2
        ) / 6
        assert result.overall_accuracy == pytest.approx(weighted)

    def test_run_stream_protocol_errors(self, edge):
        with pytest.raises(ConfigurationError):
            run_stream_protocol(edge.engine, [])
        with pytest.raises(DataShapeError):
            run_stream_protocol(
                edge.engine, [("walk", np.zeros((10, 22)))]
            )
