"""Property/fuzz tests for the gateway wire codec.

The contract under test: both codecs round-trip arbitrary frames exactly
(meta via JSON, payloads bit-exact), and **no byte sequence** —
truncated, oversized, garbage-header, bit-flipped — ever surfaces
anything but the typed :class:`~repro.exceptions.ProtocolError`; after
the error the decoder has resynchronized, so valid frames before and
after the corruption still decode.  A raw ``struct.error`` /
``UnicodeDecodeError`` / ``ValueError`` escaping the codec is a bug even
when the input is hostile.
"""

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataShapeError, MagnetoError, ProtocolError
from repro.serving.gateway import (
    MAGIC,
    PROTOCOL_VERSION,
    BinaryFrameCodec,
    Frame,
    FrameType,
    JsonLinesFrameCodec,
    chunk_frame,
    error_code_for,
    exception_for,
    hello_frame,
)
from repro.serving.gateway.protocol import HEADER_SIZE, _HEADER


# ---------------------------------------------------------------------- #
# hypothesis strategies
# ---------------------------------------------------------------------- #

meta_values = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.none(),
)
metas = st.dictionaries(
    st.text(min_size=1, max_size=12), meta_values, max_size=6
)
payload_dtypes = st.sampled_from([np.float64, np.float32])
payload_shapes = st.tuples(
    st.integers(min_value=0, max_value=16), st.integers(min_value=0, max_value=6)
)


@st.composite
def frames(draw):
    ftype = draw(st.sampled_from(list(FrameType)))
    meta = draw(metas)
    payload = None
    if draw(st.booleans()):
        shape = draw(payload_shapes)
        dtype = draw(payload_dtypes)
        payload = draw(
            st.just(
                np.arange(shape[0] * shape[1], dtype=dtype).reshape(shape)
                * draw(st.floats(-1e6, 1e6, allow_nan=False))
            )
        )
        # the encoder injects dtype/shape into meta; reserved keys
        meta.pop("dtype", None)
        meta.pop("shape", None)
        meta.pop("payload", None)
    return Frame(ftype, meta, payload)


class TestBinaryRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(frames(), min_size=1, max_size=4))
    def test_roundtrips_arbitrary_frame_sequences(self, originals):
        codec = BinaryFrameCodec()
        wire = b"".join(codec.encode(f) for f in originals)
        decoded = BinaryFrameCodec().feed(wire)
        assert len(decoded) == len(originals)
        for got, sent in zip(decoded, originals):
            assert got.type == sent.type
            for key, value in sent.meta.items():
                assert got.meta[key] == value
            if sent.payload is None:
                assert got.payload is None
            elif sent.payload.size == 0:
                # zero-length payloads ship no bytes; shape is in meta
                assert got.payload is None or got.payload.size == 0
            else:
                assert got.payload.dtype == sent.payload.dtype
                np.testing.assert_array_equal(got.payload, sent.payload)

    @settings(max_examples=30, deadline=None)
    @given(frames(), st.integers(min_value=1, max_value=7))
    def test_decoding_is_split_invariant(self, frame, step):
        wire = BinaryFrameCodec().encode(frame)
        decoder = BinaryFrameCodec()
        decoded = []
        for start in range(0, len(wire), step):
            decoded.extend(decoder.feed(wire[start : start + step]))
        assert len(decoded) == 1
        assert decoded[0].type == frame.type

    def test_decoded_payload_owns_writable_memory(self):
        frame = chunk_frame(1, np.ones((4, 3)))
        wire = BinaryFrameCodec().encode(frame)
        got = BinaryFrameCodec().feed(wire)[0]
        assert got.payload.flags.writeable
        got.payload[0, 0] = 99.0  # must not raise

    def test_f4_payload_dtype_survives_the_wire(self):
        frame = chunk_frame(1, np.ones((2, 2), dtype=np.float32))
        got = BinaryFrameCodec().feed(BinaryFrameCodec().encode(frame))[0]
        assert got.payload.dtype == np.float32


class TestBinaryHostileBytes:
    def test_truncated_frame_never_decodes_and_close_raises(self):
        wire = BinaryFrameCodec().encode(chunk_frame(1, np.ones((4, 3))))
        decoder = BinaryFrameCodec()
        assert decoder.feed(wire[:-1]) == []
        with pytest.raises(ProtocolError):
            decoder.close()

    def test_garbage_prefix_raises_typed_error_then_resyncs(self):
        good = BinaryFrameCodec().encode(hello_frame("dev"))
        decoder = BinaryFrameCodec()
        with pytest.raises(ProtocolError):
            decoder.feed(b"\x00garbage\x00" + good)
        recovered = decoder.feed(b"")
        assert [f.type for f in recovered] == [FrameType.HELLO]

    def test_frames_before_corruption_survive(self):
        codec = BinaryFrameCodec()
        wire = codec.encode(hello_frame("a")) + b"junkjunk" + codec.encode(
            hello_frame("b")
        )
        decoder = BinaryFrameCodec()
        with pytest.raises(ProtocolError):
            decoder.feed(wire)
        frames_ = decoder.feed(b"")
        assert [f.meta["session_id"] for f in frames_] == ["a", "b"]

    def test_oversized_payload_header_rejected_before_allocation(self):
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, 3, 0, 2, 1 << 31)
        decoder = BinaryFrameCodec()
        with pytest.raises(ProtocolError, match="payload length"):
            decoder.feed(header + b"{}")

    def test_oversized_meta_header_rejected(self):
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, 1, 0, 1 << 21, 0)
        with pytest.raises(ProtocolError, match="meta length"):
            BinaryFrameCodec().feed(header)

    def test_encode_refuses_payload_beyond_ceiling(self):
        codec = BinaryFrameCodec(max_payload=64)
        with pytest.raises(ProtocolError, match="ceiling"):
            codec.encode(chunk_frame(1, np.ones((10, 10))))

    def test_wrong_version_raises_typed_error(self):
        wire = bytearray(BinaryFrameCodec().encode(hello_frame("dev")))
        wire[2] = 99  # the version byte
        with pytest.raises(ProtocolError, match="version"):
            BinaryFrameCodec().feed(bytes(wire))

    def test_unknown_frame_type_consumes_the_frame(self):
        meta = b"{}"
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, 200, 0, len(meta), 0)
        good = BinaryFrameCodec().encode(hello_frame("after"))
        decoder = BinaryFrameCodec()
        with pytest.raises(ProtocolError, match="frame type"):
            decoder.feed(header + meta + good)
        assert [f.meta["session_id"] for f in decoder.feed(b"")] == ["after"]

    def test_non_utf8_meta_raises_typed_error_in_sync(self):
        meta = b"\xff\xfe\xfd\xfc"
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, 1, 0, len(meta), 0)
        good = BinaryFrameCodec().encode(hello_frame("after"))
        decoder = BinaryFrameCodec()
        with pytest.raises(ProtocolError, match="JSON"):
            decoder.feed(header + meta + good)
        assert [f.meta["session_id"] for f in decoder.feed(b"")] == ["after"]

    def test_meta_must_be_a_json_object(self):
        meta = b"[1,2]"
        header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, 1, 0, len(meta), 0)
        with pytest.raises(ProtocolError, match="object"):
            BinaryFrameCodec().feed(header + meta)

    @pytest.mark.parametrize(
        "meta",
        [
            {"dtype": "<i8", "shape": [2, 2]},  # dtype not allowed
            {"dtype": "<f8", "shape": "nope"},  # shape not a list
            {"dtype": "<f8", "shape": [2, -1]},  # negative dim
            {"dtype": "<f8", "shape": [3, 3]},  # byte-count mismatch
            {"dtype": "<f8"},  # shape missing
        ],
    )
    def test_bad_payload_meta_raises_typed_error(self, meta):
        raw = np.ones(4, dtype="<f8").tobytes()
        meta_bytes = json.dumps(meta).encode()
        header = _HEADER.pack(
            MAGIC, PROTOCOL_VERSION, 3, 0, len(meta_bytes), len(raw)
        )
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().feed(header + meta_bytes + raw)

    def test_hostile_shape_cannot_overflow_byte_count(self):
        # (2**62, 2**62) at 8 bytes/item overflows int64 multiplication;
        # the decoder must still reject it with the typed error.
        meta = json.dumps({"dtype": "<f8", "shape": [2**62, 2**62]}).encode()
        raw = b"\x00" * 8
        header = _HEADER.pack(
            MAGIC, PROTOCOL_VERSION, 3, 0, len(meta), len(raw)
        )
        with pytest.raises(ProtocolError):
            BinaryFrameCodec().feed(header + meta + raw)

    def test_fuzz_mutated_streams_only_raise_protocol_error(self):
        """Seeded fuzz: bit-flips and splices never desync or leak errors."""
        rng = np.random.default_rng(2024)
        codec = BinaryFrameCodec()
        clean = b"".join(
            codec.encode(chunk_frame(i, np.ones((3, 2)) * i)) for i in range(4)
        )
        for trial in range(200):
            wire = bytearray(clean)
            for _ in range(rng.integers(1, 6)):
                wire[rng.integers(0, len(wire))] = rng.integers(0, 256)
            decoder = BinaryFrameCodec()
            # feed in random-sized pieces; only ProtocolError may escape
            offset, decoded = 0, 0
            while offset < len(wire):
                size = int(rng.integers(1, 64))
                piece = bytes(wire[offset : offset + size])
                offset += size
                try:
                    decoded += len(decoder.feed(piece))
                except ProtocolError:
                    pass
            # drain whatever survived the mutations
            while True:
                try:
                    decoded += len(decoder.feed(b""))
                    break
                except ProtocolError:
                    continue
            assert decoded <= 4


class TestJsonLinesCodec:
    @settings(max_examples=40, deadline=None)
    @given(frames())
    def test_roundtrips_arbitrary_frames(self, frame):
        wire = JsonLinesFrameCodec().encode(frame)
        decoded = JsonLinesFrameCodec().feed(wire)
        assert len(decoded) == 1
        got = decoded[0]
        assert got.type == frame.type
        for key, value in frame.meta.items():
            if value is None or (isinstance(value, float) and value != value):
                continue
            assert got.meta[key] == value
        if frame.payload is not None and frame.payload.size:
            np.testing.assert_allclose(got.payload, frame.payload, rtol=0, atol=0)

    def test_partial_line_waits_then_close_raises(self):
        wire = JsonLinesFrameCodec().encode(hello_frame("dev"))
        decoder = JsonLinesFrameCodec()
        assert decoder.feed(wire[:-5]) == []
        with pytest.raises(ProtocolError):
            decoder.close()

    def test_bad_line_raises_typed_error_and_keeps_sync(self):
        good = JsonLinesFrameCodec().encode(hello_frame("after"))
        decoder = JsonLinesFrameCodec()
        with pytest.raises(ProtocolError):
            decoder.feed(b"this is not json\n" + good)
        assert [f.meta["session_id"] for f in decoder.feed(b"")] == ["after"]

    def test_blank_lines_are_skipped(self):
        good = JsonLinesFrameCodec().encode(hello_frame("dev"))
        frames_ = JsonLinesFrameCodec().feed(b"\n\n" + good + b"\n")
        assert [f.type for f in frames_] == [FrameType.HELLO]

    def test_unknown_type_name_raises_typed_error(self):
        with pytest.raises(ProtocolError, match="frame type"):
            JsonLinesFrameCodec().feed(b'{"type": "EXPLODE", "meta": {}}\n')


class TestFrameConstructors:
    def test_chunk_frame_requires_2d(self):
        with pytest.raises(DataShapeError):
            chunk_frame(1, np.ones(7))

    def test_error_code_taxonomy_roundtrips(self):
        from repro import exceptions as exc

        for cls in [
            exc.ProtocolError,
            exc.BackpressureError,
            exc.UnknownCohortError,
            exc.DataShapeError,
            exc.NotFittedError,
            exc.UnknownActivityError,
            exc.SerializationError,
            exc.ResourceExceededError,
            exc.PrivacyViolationError,
            exc.TrainingStateError,
            exc.ConfigurationError,
            exc.MagnetoError,
        ]:
            code = error_code_for(cls("boom"))
            rebuilt = exception_for(code, "boom")
            assert isinstance(rebuilt, cls)
            assert isinstance(rebuilt, MagnetoError)

    def test_unknown_code_falls_back_to_base_error(self):
        assert type(exception_for("NO_SUCH_CODE", "x")) is MagnetoError

    def test_foreign_exception_maps_to_internal(self):
        assert error_code_for(ValueError("nope")) == "INTERNAL"

    def test_header_layout_is_frozen(self):
        """The wire header is a public contract: 14 bytes, little-endian."""
        assert HEADER_SIZE == 14
        assert _HEADER.pack(MAGIC, 1, 2, 3, 4, 5) == (
            b"RG" + struct.pack("<BBHII", 1, 2, 3, 4, 5)
        )
