"""Unit tests for network disk (de)serialization."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.nn import (
    build_mlp,
    load_network,
    network_bundle_bytes,
    save_network,
)


class TestSaveLoad:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        net = build_mlp(6, hidden_dims=(12, 8), output_dim=4, rng=1)
        path = tmp_path / "model.npz"
        save_network(net, path)
        twin = load_network(path)
        x = rng.normal(size=(5, 6))
        assert np.allclose(net.forward(x), twin.forward(x))

    def test_roundtrip_preserves_architecture(self, tmp_path):
        net = build_mlp(6, hidden_dims=(12,), output_dim=4, dropout=0.1,
                        batchnorm=True, rng=1)
        path = tmp_path / "model.npz"
        save_network(net, path)
        twin = load_network(path)
        assert twin.to_config() == net.to_config()

    def test_load_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(SerializationError):
            load_network(path)

    def test_load_wrong_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(SerializationError, match="missing config"):
            load_network(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_network(tmp_path / "absent.npz")


class TestBundleBytes:
    def test_positive_and_tracks_model_size(self):
        small = build_mlp(6, hidden_dims=(8,), output_dim=4, rng=1)
        large = build_mlp(6, hidden_dims=(128, 64), output_dim=32, rng=1)
        assert 0 < network_bundle_bytes(small) < network_bundle_bytes(large)

    def test_roughly_float32_parameter_cost(self):
        net = build_mlp(10, hidden_dims=(64,), output_dim=16, rng=1)
        n_bytes = network_bundle_bytes(net)
        raw = net.n_parameters() * 4
        # npz adds headers but should stay within 2x of raw float32 cost.
        assert raw <= n_bytes < 2 * raw + 4096
