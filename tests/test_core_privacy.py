"""Unit tests for the privacy guard and the network link."""

import numpy as np
import pytest

from repro.core import (
    CLOUD_TO_EDGE,
    EDGE_TO_CLOUD,
    NetworkLink,
    PrivacyGuard,
    TYPICAL_4G,
    TYPICAL_WIFI,
)
from repro.exceptions import ConfigurationError, PrivacyViolationError


class TestPrivacyGuardEnforcing:
    def test_cloud_to_edge_always_allowed(self):
        guard = PrivacyGuard(enforce=True)
        rec = guard.record(CLOUD_TO_EDGE, "package", 1000, contains_user_data=False)
        assert rec.allowed

    def test_edge_to_cloud_without_user_data_allowed(self):
        # E.g. anonymous telemetry counters — Definition 1 only covers user data.
        guard = PrivacyGuard(enforce=True)
        rec = guard.record(EDGE_TO_CLOUD, "heartbeat", 16, contains_user_data=False)
        assert rec.allowed

    def test_edge_to_cloud_user_data_blocked(self):
        guard = PrivacyGuard(enforce=True)
        with pytest.raises(PrivacyViolationError, match="Definition 1"):
            guard.record(EDGE_TO_CLOUD, "raw_windows", 4096,
                         contains_user_data=True)

    def test_blocked_transfer_is_still_logged(self):
        guard = PrivacyGuard(enforce=True)
        with pytest.raises(PrivacyViolationError):
            guard.record(EDGE_TO_CLOUD, "raw", 100, contains_user_data=True)
        assert len(guard.log) == 1
        assert not guard.log[0].allowed

    def test_no_user_bytes_ever_leave(self):
        guard = PrivacyGuard(enforce=True)
        guard.record(CLOUD_TO_EDGE, "package", 5000, contains_user_data=False)
        with pytest.raises(PrivacyViolationError):
            guard.record(EDGE_TO_CLOUD, "raw", 100, contains_user_data=True)
        assert guard.user_bytes_sent_to_cloud() == 0

    def test_violations_listed(self):
        guard = PrivacyGuard(enforce=True)
        with pytest.raises(PrivacyViolationError):
            guard.record(EDGE_TO_CLOUD, "raw", 100, contains_user_data=True)
        assert len(guard.violations()) == 1


class TestPrivacyGuardBaselineMode:
    def test_violations_allowed_but_counted(self):
        guard = PrivacyGuard(enforce=False)
        rec = guard.record(EDGE_TO_CLOUD, "raw", 500, contains_user_data=True)
        assert rec.allowed
        assert guard.user_bytes_sent_to_cloud() == 500
        assert len(guard.violations()) == 1

    def test_accumulates_bytes(self):
        guard = PrivacyGuard(enforce=False)
        for _ in range(10):
            guard.record(EDGE_TO_CLOUD, "raw", 100, contains_user_data=True)
        assert guard.user_bytes_sent_to_cloud() == 1000


class TestGuardBookkeeping:
    def test_bytes_by_direction(self):
        guard = PrivacyGuard(enforce=False)
        guard.record(CLOUD_TO_EDGE, "pkg", 300, contains_user_data=False)
        guard.record(EDGE_TO_CLOUD, "raw", 200, contains_user_data=True)
        assert guard.bytes_by_direction(CLOUD_TO_EDGE) == 300
        assert guard.bytes_by_direction(EDGE_TO_CLOUD) == 200

    def test_reset(self):
        guard = PrivacyGuard(enforce=False)
        guard.record(CLOUD_TO_EDGE, "pkg", 300, contains_user_data=False)
        guard.reset()
        assert guard.log == []

    def test_invalid_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyGuard().record("sideways", "x", 1, contains_user_data=False)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivacyGuard().record(CLOUD_TO_EDGE, "x", -1, contains_user_data=False)


class TestNetworkLink:
    def test_latency_floor(self):
        link = NetworkLink(latency_ms=50.0, bandwidth_mbps=10.0)
        assert link.transfer_ms(0) == pytest.approx(50.0)

    def test_bandwidth_term(self):
        link = NetworkLink(latency_ms=0.0, bandwidth_mbps=8.0)
        # 1 MB at 8 Mbit/s = 1 second.
        assert link.transfer_ms(1_000_000) == pytest.approx(1000.0)

    def test_monotone_in_size(self):
        link = NetworkLink(latency_ms=10.0, bandwidth_mbps=20.0)
        assert link.transfer_ms(10_000) < link.transfer_ms(1_000_000)

    def test_round_trip_sums(self):
        link = NetworkLink(latency_ms=10.0, bandwidth_mbps=20.0, jitter_ms=0.0)
        assert link.round_trip_ms(1000, 100) == pytest.approx(
            link.transfer_ms(1000) + link.transfer_ms(100)
        )

    def test_jitter_bounded(self):
        link = NetworkLink(latency_ms=10.0, bandwidth_mbps=100.0,
                           jitter_ms=5.0, rng=0)
        for _ in range(50):
            cost = link.transfer_ms(0)
            assert 10.0 <= cost <= 15.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkLink().transfer_ms(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(latency_ms=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkLink(bandwidth_mbps=0.0)

    def test_profiles_sane(self):
        wifi = NetworkLink(**TYPICAL_WIFI, rng=0)
        lte = NetworkLink(**TYPICAL_4G, rng=0)
        # Wi-Fi should beat 4G for the same payload, on average.
        wifi_cost = np.mean([wifi.transfer_ms(100_000) for _ in range(30)])
        lte_cost = np.mean([lte.transfer_ms(100_000) for _ in range(30)])
        assert wifi_cost < lte_cost
