"""Batched InferenceEngine + FleetServer: parity with the legacy path.

The engine's contract is that one fused vectorized pass over ``(k,
window_len, channels)`` produces *exactly* what the seed's per-window code
produced: same labels, confidences within 1e-9, same distances, same
open-set verdicts.  These tests pin that contract on both random tensors
and real scenario data, plus the serving semantics of the fleet layer.
"""

import numpy as np
import pytest

from repro.core import (
    EdgeSession,
    FleetServer,
    HysteresisSmoother,
    InferenceEngine,
    NCMClassifier,
    OpenSetNCM,
    UNKNOWN_LABEL,
    UNKNOWN_NAME,
)
from repro.core.openset import accept_from_distances
from repro.edge_runtime import EdgeRuntime
from repro.exceptions import ConfigurationError, DataShapeError
from repro.preprocessing import (
    ButterworthLowpass,
    IdentityFilter,
    MovingAverageFilter,
    PreprocessingPipeline,
)

PARITY = dict(rtol=0.0, atol=1e-9)


def legacy_window_results(edge, windows):
    """The seed's per-window inference loop, kept verbatim as the oracle."""
    distances, probas = [], []
    for window in windows:
        features = edge.pipeline.process_window(window)
        embedding = edge.embedder.embed(features[None, :])
        distances.append(edge.ncm.distances(embedding)[0])
        probas.append(edge.ncm.predict_proba(embedding)[0])
    return np.asarray(distances), np.asarray(probas)


@pytest.fixture
def windows(scenario):
    return scenario.base_test.windows[:20]


class TestBatchedParity:
    def test_scenario_distances_labels_confidences(self, edge, windows):
        ref_dists, ref_proba = legacy_window_results(edge, windows)
        batch = edge.infer_windows(windows)
        np.testing.assert_allclose(batch.distances, ref_dists, **PARITY)
        np.testing.assert_allclose(batch.proba, ref_proba, **PARITY)
        ref_labels = np.argmin(ref_dists, axis=1)
        assert np.array_equal(batch.labels, ref_labels)
        assert np.array_equal(batch.nearest, ref_labels)
        np.testing.assert_allclose(
            batch.confidences,
            ref_proba[np.arange(len(windows)), ref_labels],
            **PARITY,
        )

    def test_single_window_wrapper_matches_batch(self, edge, windows):
        batch = edge.infer_windows(windows)
        for i, window in enumerate(windows[:5]):
            result = edge.infer_window(window)
            assert result.activity == batch.names[i]
            assert result.confidence == pytest.approx(
                float(batch.confidences[i]), abs=1e-9
            )
            for name, dist in result.distances.items():
                assert dist == pytest.approx(
                    batch.distances_of(i)[name], abs=1e-9
                )

    def test_random_embedding_distance_parity(self, rng):
        ncm = NCMClassifier().fit(
            rng.normal(size=(40, 16)),
            rng.integers(0, 4, size=40),
            ["a", "b", "c", "d"],
        )

        class _Identity:
            def embed(self, features):
                return np.asarray(features, dtype=np.float64)

        engine = InferenceEngine(_Identity(), ncm)
        emb = rng.normal(size=(64, 16))
        np.testing.assert_allclose(
            engine.distances_from_embeddings(emb), ncm.distances(emb), **PARITY
        )
        batch = engine.infer_embeddings(emb)
        assert np.array_equal(batch.labels, ncm.predict(emb))
        np.testing.assert_allclose(
            batch.proba, ncm.predict_proba(emb), **PARITY
        )

    def test_infer_features_matches_legacy_predict(self, edge, scenario):
        feats = edge.pipeline.process_windows(scenario.base_test.windows)
        legacy = edge.ncm.predict(edge.embedder.embed(feats))
        assert np.array_equal(edge.infer_features(feats), legacy)
        assert np.array_equal(edge.engine.predict_features(feats), legacy)

    def test_open_set_verdict_parity(self, edge, scenario, rng):
        open_ncm = OpenSetNCM(quantile=0.9, slack=1.0, ratio=0.2)
        open_ncm.fit_from_support_set(edge.embedder, edge.support_set)
        engine = InferenceEngine(
            edge.embedder, open_ncm, pipeline=edge.pipeline
        )
        # scenario windows plus garbage windows that should be rejected
        windows = np.concatenate(
            [scenario.base_test.windows[:10], rng.normal(size=(10, 120, 22)) * 40.0]
        )
        batch = engine.infer_windows(windows)
        feats = edge.pipeline.process_windows(windows)
        legacy = open_ncm.predict(edge.embedder.embed(feats))
        assert np.array_equal(batch.labels, legacy)
        assert np.array_equal(batch.accepted, legacy != UNKNOWN_LABEL)
        names = batch.names
        for i, label in enumerate(legacy):
            expected = (
                UNKNOWN_NAME if label == UNKNOWN_LABEL
                else open_ncm.class_names_[label]
            )
            assert names[i] == expected

    def test_empty_batch(self, edge):
        batch = edge.infer_windows(np.empty((0, 120, 22)))
        assert len(batch) == 0
        assert batch.names == []

    def test_non_3d_batch_rejected(self, edge):
        with pytest.raises(DataShapeError):
            edge.infer_windows(np.zeros((120, 22)))

    def test_engine_without_pipeline_rejects_raw_windows(self, edge):
        engine = InferenceEngine(edge.embedder, edge.ncm)
        with pytest.raises(ConfigurationError):
            engine.infer_windows(np.zeros((1, 120, 22)))


class TestPrototypeCache:
    def test_cache_invalidates_on_refit(self, edge, scenario, rng):
        feats = edge.pipeline.process_windows(scenario.base_test.windows[:8])
        engine = edge.engine
        before = engine.infer_features(feats).distances
        assert engine._cached_sq_norms is not None
        # learning a new class refits the NCM -> fresh prototype array
        new_feats = edge.pipeline.process_windows(
            scenario.sensor_device.record("gesture_hi", 20.0).data[None, :120, :]
        )
        edge.support_set.add_class(
            "gesture_hi", np.tile(new_feats, (4, 1)), embedder=edge.embedder
        )
        edge.ncm.fit_from_support_set(edge.embedder, edge.support_set)
        after = engine.infer_features(feats).distances
        assert after.shape[1] == before.shape[1] + 1
        np.testing.assert_allclose(
            after, edge.ncm.distances(edge.embedder.embed(feats)), **PARITY
        )

    def test_edge_keeps_one_engine_across_learning(self, edge, scenario):
        """External engine holders must observe incremental updates."""
        engine = edge.engine
        server = FleetServer(engine)
        server.connect("a")
        rec = scenario.sensor_device.record("gesture_hi", 20.0)
        edge.learn_activity("gesture_hi", rec)
        assert edge.engine is engine
        assert "gesture_hi" in server.engine.class_names
        window = scenario.sensor_device.record("gesture_hi", 1.0).data[
            : edge.pipeline.window_len
        ]
        verdict = server.step({"a": window})["a"]
        assert verdict.activity == edge.infer_window(window).activity

    def test_refresh_recomputes_for_inplace_mutation(self, rng):
        ncm = NCMClassifier().fit(
            rng.normal(size=(10, 4)), rng.integers(0, 2, size=10), ["a", "b"]
        )

        class _Identity:
            def embed(self, features):
                return np.asarray(features, dtype=np.float64)

        engine = InferenceEngine(_Identity(), ncm)
        emb = rng.normal(size=(3, 4))
        engine.distances_from_embeddings(emb)  # prime the cache
        ncm.prototypes_ *= 2.0  # in-place: identity check cannot see it
        engine.refresh()
        np.testing.assert_allclose(
            engine.distances_from_embeddings(emb), ncm.distances(emb), **PARITY
        )


class TestProbaFromDistances:
    def test_predict_proba_derives_from_distance_row(self, rng):
        ncm = NCMClassifier().fit(
            rng.normal(size=(20, 8)), rng.integers(0, 3, size=20),
            ["a", "b", "c"],
        )
        emb = rng.normal(size=(6, 8))
        dists = ncm.distances(emb)
        np.testing.assert_allclose(
            NCMClassifier.proba_from_distances(dists),
            ncm.predict_proba(emb),
            rtol=0.0,
            atol=0.0,
        )

    def test_temperature_validation(self):
        with pytest.raises(DataShapeError):
            NCMClassifier.proba_from_distances(np.ones((2, 3)), temperature=0.0)

    def test_accept_from_distances_shape_check(self):
        with pytest.raises(ConfigurationError):
            accept_from_distances(np.ones((2, 3)), np.ones(2), ratio=0.0)


class TestBatchDenoise:
    def test_butterworth_batch_matches_per_window(self, rng):
        windows = rng.normal(size=(7, 120, 22))
        filt = ButterworthLowpass()
        batched = filt.apply_batch(windows)
        looped = np.stack([filt.apply(w) for w in windows], axis=0)
        np.testing.assert_allclose(batched, looped, **PARITY)

    def test_identity_batch_matches_per_window(self, rng):
        windows = rng.normal(size=(5, 30, 22))
        filt = IdentityFilter()
        np.testing.assert_array_equal(filt.apply_batch(windows), windows)

    def test_short_windows_fall_back_to_identity(self, rng):
        windows = rng.normal(size=(3, 10, 22))  # below filtfilt's min length
        filt = ButterworthLowpass()
        batched = filt.apply_batch(windows)
        looped = np.stack([filt.apply(w) for w in windows], axis=0)
        np.testing.assert_array_equal(batched, looped)

    def test_batch_rejects_non_3d(self):
        with pytest.raises(DataShapeError):
            ButterworthLowpass().apply_batch(np.zeros((120, 22)))
        with pytest.raises(DataShapeError):
            IdentityFilter().apply_batch(np.zeros((120, 22)))

    def test_pipeline_loop_fallback_for_other_denoisers(self, tiny_campaign, rng):
        windows = tiny_campaign.windows[:6]
        batched = PreprocessingPipeline(denoiser=MovingAverageFilter(5))
        reference = PreprocessingPipeline(denoiser=MovingAverageFilter(5))
        np.testing.assert_allclose(
            batched.raw_features_of_windows(windows),
            np.stack(
                [
                    reference.extractor.extract_one(
                        reference.denoiser.apply(w)
                    )
                    for w in windows
                ]
            ),
            **PARITY,
        )

    def test_pipeline_batch_denoise_parity(self, fitted_pipeline, tiny_campaign):
        windows = tiny_campaign.windows[:8]
        looped = np.stack(
            [fitted_pipeline.denoiser.apply(w) for w in windows], axis=0
        )
        expected = fitted_pipeline.normalizer.transform(
            fitted_pipeline.extractor.extract(looped)
        )
        np.testing.assert_allclose(
            fitted_pipeline.process_windows(windows), expected, **PARITY
        )

    def test_raw_features_rejects_non_3d(self, fitted_pipeline):
        with pytest.raises(DataShapeError):
            fitted_pipeline.raw_features_of_windows(np.zeros((120, 22)))


class TestFleetServer:
    @pytest.fixture
    def server(self, edge):
        return FleetServer(edge.engine)

    def test_requires_pipeline_engine(self, edge):
        with pytest.raises(ConfigurationError):
            FleetServer(InferenceEngine(edge.embedder, edge.ncm))

    def test_connect_and_duplicate(self, server):
        session = server.connect("alice")
        assert isinstance(session, EdgeSession)
        assert server.n_sessions == 1
        with pytest.raises(ConfigurationError):
            server.connect("alice")

    def test_step_unknown_session_rejected(self, server, windows):
        with pytest.raises(ConfigurationError):
            server.step({"ghost": windows[0]})

    def test_step_matches_engine_batch(self, edge, server, windows):
        ids = [f"u{i}" for i in range(6)]
        server.connect_many(ids)
        verdicts = server.step(
            {sid: windows[i] for i, sid in enumerate(ids)}
        )
        batch = edge.infer_windows(windows[:6])
        names = batch.names
        for i, sid in enumerate(ids):
            assert verdicts[sid].activity == names[i]
            assert verdicts[sid].confidence == pytest.approx(
                float(batch.confidences[i]), abs=1e-9
            )

    def test_smoothing_state_is_per_session(self, edge, server, windows):
        server.connect_many(["a", "b"])
        # hysteresis: the first observed label sticks until debounced away
        first = server.step({"a": windows[0], "b": windows[1]})
        for _ in range(3):
            later = server.step({"a": windows[0], "b": windows[1]})
        assert later["a"].display == first["a"].display
        assert server.session("a").windows_seen == 4
        assert server.session("b").windows_seen == 4

    def test_partial_tick_and_empty_step(self, server, windows):
        server.connect_many(["a", "b"])
        assert server.step({}) == {}
        verdicts = server.step({"b": windows[0]})
        assert list(verdicts) == ["b"]
        assert server.session("a").windows_seen == 0

    def test_non_2d_window_rejected(self, server, windows):
        server.connect("a")
        with pytest.raises(DataShapeError):
            server.step({"a": windows[:2]})

    def test_mismatched_window_lengths_name_the_session(self, server, windows):
        server.connect_many(["a", "b"])
        with pytest.raises(DataShapeError, match="session 'b'"):
            server.step({"a": windows[0], "b": windows[1][:60]})

    def test_disconnect(self, server):
        server.connect("a")
        server.disconnect("a")
        assert server.n_sessions == 0
        with pytest.raises(ConfigurationError):
            server.disconnect("a")

    def test_summary_counts(self, server, windows):
        server.connect_many(["a", "b", "c"])
        for i in range(2):
            server.step({sid: windows[i] for sid in ["a", "b", "c"]})
        summary = server.summary()
        assert summary["sessions"] == 3.0
        assert summary["ticks"] == 2.0
        assert summary["windows_served"] == 6.0
        assert summary["windows_per_sec"] > 0.0
        # cumulative counters survive disconnects
        server.disconnect("a")
        after = server.summary()
        assert after["windows_served"] == 6.0
        assert after["rejected_windows"] == summary["rejected_windows"]

    def test_session_reset(self, server, windows):
        server.connect("a")
        server.step({"a": windows[0]})
        session = server.session("a")
        session.reset()
        assert session.windows_seen == 0
        assert session.last_verdict is None

    def test_no_smoother_factory(self, edge, windows):
        server = FleetServer(edge.engine, smoother_factory=None)
        server.connect("a")
        verdict = server.step({"a": windows[0]})["a"]
        assert verdict.display == verdict.activity


class TestRuntimeBatchAccounting:
    def test_infer_windows_charges_per_window(self, edge, windows):
        runtime = EdgeRuntime(edge)
        batch = runtime.infer_windows(windows[:8])
        assert len(batch) == 8
        assert runtime.stats.inferences == 8
        assert runtime.stats.compute_energy_joules > 0.0
        assert runtime.stats.wall_clock_ms > 0.0

    def test_empty_batch_charges_nothing(self, edge):
        runtime = EdgeRuntime(edge)
        runtime.infer_windows(np.empty((0, 120, 22)))
        assert runtime.stats.inferences == 0
