"""Unit tests for model compression (quantization, pruning, low-rank)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataShapeError
from repro.nn import (
    Linear,
    QuantizedNetwork,
    ReLU,
    Sequential,
    build_mlp,
    factorize_linear,
    factorize_network,
    prune_network,
    quantize_network,
    quantize_tensor,
    reconstruction_error,
    sparse_size_bytes,
    sparsity_of,
)


@pytest.fixture
def net(rng):
    return build_mlp(16, hidden_dims=(64, 64), output_dim=8, rng=3)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        arr = rng.normal(size=(50, 30))
        qt = quantize_tensor(arr)
        step = qt.scale
        assert np.abs(qt.dequantize() - arr).max() <= step / 2 + 1e-12

    def test_int8_storage(self, rng):
        arr = rng.normal(size=(100, 10))
        qt = quantize_tensor(arr)
        assert qt.values.dtype == np.int8
        assert qt.nbytes == 1000

    def test_constant_tensor(self):
        qt = quantize_tensor(np.full((4, 4), 7.0))
        assert np.allclose(qt.dequantize(), 7.0)

    def test_extremes_representable(self):
        arr = np.array([[-3.0, 5.0]])
        deq = quantize_tensor(arr).dequantize()
        assert deq.min() == pytest.approx(-3.0, abs=0.05)
        assert deq.max() == pytest.approx(5.0, abs=0.05)


class TestQuantizedNetwork:
    def test_output_close_to_float_network(self, net, rng):
        quant = quantize_network(net)
        x = rng.normal(size=(10, 16))
        err = np.abs(quant.forward(x) - net.forward(x)).mean()
        scale = np.abs(net.forward(x)).mean()
        assert err < 0.05 * (scale + 1.0)

    def test_storage_roughly_quartered(self, net):
        quant = quantize_network(net)
        assert quant.size_bytes() < 0.3 * net.size_bytes(dtype=np.float32) * 4 / 3
        assert quant.size_bytes() < net.size_bytes(dtype=np.float32)

    def test_original_untouched(self, net, rng):
        x = rng.normal(size=(4, 16))
        before = net.forward(x)
        quantize_network(net)
        assert np.allclose(net.forward(x), before)

    def test_training_forward_rejected(self, net, rng):
        quant = quantize_network(net)
        with pytest.raises(ConfigurationError):
            quant.forward(rng.normal(size=(2, 16)), training=True)

    def test_weight_error_bound_reported(self, net):
        quant = quantize_network(net)
        assert quant.max_abs_weight_error() > 0.0

    def test_parameter_count_preserved(self, net):
        assert quantize_network(net).n_parameters() == net.n_parameters()


class TestPruning:
    def test_target_sparsity_reached(self, net):
        pruned = prune_network(net, sparsity=0.5)
        assert sparsity_of(pruned) == pytest.approx(0.5, abs=0.02)

    def test_zero_sparsity_is_copy(self, net, rng):
        pruned = prune_network(net, sparsity=0.0)
        x = rng.normal(size=(3, 16))
        assert np.allclose(pruned.forward(x), net.forward(x))

    def test_original_untouched(self, net):
        prune_network(net, sparsity=0.9)
        assert sparsity_of(net) < 0.05

    def test_small_weights_removed_first(self, net):
        pruned = prune_network(net, sparsity=0.3)
        for orig, new in zip(net.layers, pruned.layers):
            if isinstance(orig, Linear):
                removed = (new.weight.data == 0.0) & (orig.weight.data != 0.0)
                kept = new.weight.data != 0.0
                if removed.any() and kept.any():
                    assert (
                        np.abs(orig.weight.data[removed]).max()
                        <= np.abs(new.weight.data[kept]).min() + 1e-12
                    )

    def test_mild_pruning_preserves_function(self, net, rng):
        pruned = prune_network(net, sparsity=0.2)
        x = rng.normal(size=(8, 16))
        err = reconstruction_error(net, pruned, x)
        scale = np.abs(net.forward(x)).mean()
        assert err < 0.25 * (scale + 1.0)

    def test_sparse_encoding_shrinks_with_sparsity(self, net):
        mild = sparse_size_bytes(prune_network(net, 0.3))
        heavy = sparse_size_bytes(prune_network(net, 0.9))
        assert heavy < mild

    def test_invalid_sparsity_rejected(self, net):
        with pytest.raises(ConfigurationError):
            prune_network(net, sparsity=1.0)
        with pytest.raises(ConfigurationError):
            prune_network(net, sparsity=-0.1)

    def test_no_linear_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            prune_network(Sequential([ReLU()]), 0.5)


class TestLowRank:
    def test_factorize_linear_reconstructs_at_full_rank(self, rng):
        layer = Linear(20, 12, rng=rng)
        first, second = factorize_linear(layer, rank=12)
        combined = first.weight.data @ second.weight.data
        assert np.allclose(combined, layer.weight.data, atol=1e-10)

    def test_truncated_rank_is_best_approximation_direction(self, rng):
        layer = Linear(20, 12, rng=rng)
        lo = factorize_linear(layer, rank=2)
        hi = factorize_linear(layer, rank=8)

        def err(pair):
            return np.linalg.norm(
                pair[0].weight.data @ pair[1].weight.data - layer.weight.data
            )

        assert err(hi) < err(lo)

    def test_bias_preserved(self, rng):
        layer = Linear(10, 6, rng=rng)
        layer.bias.data = rng.normal(size=6)
        first, second = factorize_linear(layer, rank=3)
        assert np.allclose(second.bias.data, layer.bias.data)
        assert np.allclose(first.bias.data, 0.0)

    def test_invalid_rank_rejected(self, rng):
        layer = Linear(10, 6, rng=rng)
        with pytest.raises(ConfigurationError):
            factorize_linear(layer, rank=0)
        with pytest.raises(ConfigurationError):
            factorize_linear(layer, rank=7)

    def test_factorize_network_shrinks_parameters(self):
        wide = build_mlp(80, hidden_dims=(512, 256), output_dim=64, rng=1)
        compact = factorize_network(wide, rank_fraction=0.25)
        assert compact.n_parameters() < wide.n_parameters()

    def test_factorize_network_output_reasonable(self, rng):
        wide = build_mlp(16, hidden_dims=(128,), output_dim=8, rng=1)
        compact = factorize_network(wide, rank_fraction=0.9, min_features=8)
        x = rng.normal(size=(6, 16))
        err = reconstruction_error(wide, compact, x)
        scale = np.abs(wide.forward(x)).mean()
        assert err < 0.3 * (scale + 1.0)

    def test_small_layers_kept_dense(self):
        tiny = build_mlp(8, hidden_dims=(16,), output_dim=4, rng=1)
        same = factorize_network(tiny, rank_fraction=0.5, min_features=64)
        assert same.n_parameters() == tiny.n_parameters()

    def test_never_grows_parameters(self):
        net = build_mlp(80, hidden_dims=(256, 64), output_dim=32, rng=1)
        for fraction in (0.1, 0.5, 0.9, 1.0):
            compact = factorize_network(net, rank_fraction=fraction,
                                        min_features=32)
            assert compact.n_parameters() <= net.n_parameters()

    def test_invalid_fraction_rejected(self, net):
        with pytest.raises(ConfigurationError):
            factorize_network(net, rank_fraction=0.0)


class TestReconstructionError:
    def test_zero_for_identical(self, net, rng):
        assert reconstruction_error(net, net, rng.normal(size=(3, 16))) == 0.0

    def test_probe_shape_checked(self, net):
        with pytest.raises(DataShapeError):
            reconstruction_error(net, net, np.zeros(16))


class TestCompressionOnTrainedModel:
    """Compression must preserve the *classifier*, not just the weights."""

    def test_quantized_edge_model_keeps_accuracy(self, scenario):
        from repro.core import NCMClassifier

        edge = scenario.fresh_edge(rng=20)
        feats = edge.pipeline.process_windows(scenario.base_test.windows)
        baseline = edge.infer_features(feats)

        quant = quantize_network(edge.embedder.network)

        class _QuantEmbedder:
            def embed(self, features):
                return quant.forward(np.asarray(features, dtype=np.float64))

        ncm = NCMClassifier().fit_from_support_set(
            _QuantEmbedder(), scenario.package.support_set
        )
        quant_pred = ncm.predict(_QuantEmbedder().embed(feats))
        agreement = float(np.mean(quant_pred == baseline))
        assert agreement > 0.9
