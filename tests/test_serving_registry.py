"""Tests for the multi-model cohort registry and fleet specifications."""

import json

import numpy as np
import pytest

from repro.core import InferenceEngine, TransferPackage
from repro.exceptions import (
    ConfigurationError,
    SerializationError,
    UnknownCohortError,
)
from repro.serving import (
    DEFAULT_COHORT,
    CohortSpec,
    ModelRegistry,
    backbone_fingerprint_of,
    engine_from_package,
    load_cohort_spec,
    parse_fleet_spec,
    registry_from_specs,
)


@pytest.fixture
def registry(scenario):
    reg = ModelRegistry()
    reg.publish(DEFAULT_COHORT, scenario.package)
    return reg


@pytest.fixture(scope="module")
def package_path(request, tmp_path_factory):
    scenario = request.getfixturevalue("scenario")
    path = tmp_path_factory.mktemp("registry") / "package.npz"
    scenario.package.save(path)
    return str(path)


class TestModelRegistry:
    def test_publish_package_builds_serving_engine(self, scenario):
        registry = ModelRegistry()
        engine = registry.publish("wrist", scenario.package)
        assert isinstance(engine, InferenceEngine)
        assert engine.pipeline is scenario.package.pipeline
        assert registry.engine_for("wrist") is engine
        assert registry.loaded("wrist")
        assert registry.version("wrist") == 1

    def test_publish_engine_directly(self, edge):
        registry = ModelRegistry()
        assert registry.publish("wrist", edge.engine) is edge.engine
        assert registry.engine_for("wrist") is edge.engine

    def test_default_cohort_resolution(self, registry):
        assert registry.engine_for() is registry.engine_for(DEFAULT_COHORT)
        assert registry.default_cohort == DEFAULT_COHORT

    def test_custom_default_cohort(self, scenario):
        registry = ModelRegistry(default_cohort="wrist")
        registry.publish("wrist", scenario.package)
        assert registry.engine_for() is registry.engine_for("wrist")

    def test_unknown_cohort_raises(self, registry):
        with pytest.raises(UnknownCohortError, match="'pocket'"):
            registry.engine_for("pocket")
        assert "pocket" not in registry
        assert DEFAULT_COHORT in registry

    def test_unknown_cohort_is_configuration_error(self):
        assert issubclass(UnknownCohortError, ConfigurationError)

    def test_publish_rejects_arbitrary_objects(self):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError, match="dict"):
            registry.publish("wrist", {"not": "a package"})

    def test_publish_rejects_pipelineless_engine(self, edge):
        registry = ModelRegistry()
        bare = InferenceEngine(edge.embedder, edge.ncm)
        with pytest.raises(ConfigurationError, match="pipeline"):
            registry.publish("wrist", bare)

    def test_channel_contract_rejects_mismatched_package(self, scenario):
        registry = ModelRegistry(expected_channels=3)
        with pytest.raises(ConfigurationError, match="channels"):
            registry.publish("wrist", scenario.package)
        assert not registry.has_cohort("wrist")
        assert registry._engine_memo == {}  # rejected package not retained

    def test_channel_contract_locks_on_first_publish(self, scenario, edge):
        registry = ModelRegistry()
        assert registry.expected_channels is None
        registry.publish("a", scenario.package)
        assert registry.expected_channels == 22
        registry.publish("b", edge.engine)  # same layout: accepted

    def test_lazy_load_from_path(self, package_path):
        registry = ModelRegistry()
        registry.register_lazy(DEFAULT_COHORT, package_path)
        assert registry.has_cohort(DEFAULT_COHORT)
        assert not registry.loaded(DEFAULT_COHORT)
        engine = registry.engine_for(DEFAULT_COHORT)
        assert registry.loaded(DEFAULT_COHORT)
        assert registry.engine_for(DEFAULT_COHORT) is engine  # cached

    def test_lazy_load_from_factory_runs_once(self, scenario):
        calls = []

        def factory():
            calls.append(1)
            return scenario.package

        registry = ModelRegistry()
        registry.register_lazy("wrist", factory)
        registry.engine_for("wrist")
        registry.engine_for("wrist")
        assert len(calls) == 1

    def test_lazy_load_enforces_channel_contract(self, package_path):
        registry = ModelRegistry(expected_channels=3)
        registry.register_lazy("wrist", package_path)
        with pytest.raises(ConfigurationError, match="channels"):
            registry.engine_for("wrist")

    def test_same_package_object_shares_one_engine(self, scenario):
        """Publishing one package under two cohorts -> one shared batch."""
        registry = ModelRegistry()
        first = registry.publish("wrist", scenario.package)
        second = registry.publish("pocket", scenario.package)
        assert first is second

    def test_hot_swap_replaces_engine_and_bumps_version(self, scenario, edge):
        registry = ModelRegistry()
        first = registry.publish("wrist", scenario.package)
        second = registry.publish("wrist", edge.engine)
        assert registry.engine_for("wrist") is second
        assert second is not first
        assert registry.version("wrist") == 2

    def test_hot_swap_does_not_accumulate_old_packages(self, scenario):
        """Periodic publishes must not pin superseded packages forever."""
        registry = ModelRegistry()
        for _ in range(5):
            copy = TransferPackage(
                pipeline=scenario.package.pipeline,
                embedder=scenario.package.embedder.clone(),
                support_set=scenario.package.support_set.clone(),
            )
            registry.publish("wrist", copy)
        assert len(registry._engine_memo) == 1  # only the live package

    def test_unpublish_removes_cohort(self, registry):
        registry.unpublish(DEFAULT_COHORT)
        with pytest.raises(UnknownCohortError):
            registry.engine_for(DEFAULT_COHORT)
        with pytest.raises(UnknownCohortError):
            registry.unpublish(DEFAULT_COHORT)

    def test_package_for_round_trips(self, scenario):
        registry = ModelRegistry()
        registry.publish("wrist", scenario.package)
        assert registry.package_for("wrist") is scenario.package

    def test_package_for_bare_engine_raises(self, edge):
        registry = ModelRegistry()
        registry.publish("wrist", edge.engine)
        with pytest.raises(ConfigurationError, match="bare engine"):
            registry.package_for("wrist")

    def test_catalog_views(self, scenario, package_path):
        registry = ModelRegistry()
        registry.publish("b", scenario.package)
        registry.register_lazy("a", package_path)
        assert registry.cohorts() == ("a", "b")
        assert len(registry) == 2
        described = registry.describe()
        assert described["a"]["loaded"] is False
        assert described["b"]["loaded"] is True
        assert described["b"]["classes"] == list(
            scenario.package.support_set.class_names
        )

    def test_engine_from_package_matches_edge_install(self, scenario, edge):
        engine = engine_from_package(scenario.package)
        feats = edge.pipeline.process_windows(
            scenario.base_test.windows[:4]
        )
        np.testing.assert_allclose(
            engine.infer_features(feats).distances,
            edge.engine.infer_features(feats).distances,
            rtol=0, atol=1e-9,
        )


class TestBackboneGroups:
    def test_publish_snapshots_backbone_hash(self, scenario):
        registry = ModelRegistry(default_cohort="x")
        engine = registry.publish("x", scenario.fresh_edge(rng=1).engine)
        fingerprint = backbone_fingerprint_of(engine)
        assert isinstance(fingerprint, str) and len(fingerprint) == 64
        assert registry.describe()["x"]["backbone"] == fingerprint
        assert registry.engine_handle_for("x").backbone == fingerprint
        assert registry.backbone_group_for("x") == ("x",)

    def test_same_backbone_cohorts_share_a_group(self, scenario):
        registry = ModelRegistry(default_cohort="x")
        registry.publish("x", scenario.fresh_edge(rng=1).engine)
        registry.publish("y", scenario.fresh_edge(rng=3).engine)
        assert registry.backbone_group_for("x") == ("x", "y")
        assert registry.backbone_group_for("y") == ("x", "y")
        groups = registry.backbone_groups()
        assert len(groups) == 1
        (cohorts,) = groups.values()
        assert cohorts == ("x", "y")

    def test_hot_swap_new_backbone_splits_the_group(self, scenario):
        registry = ModelRegistry(default_cohort="x")
        registry.publish("x", scenario.fresh_edge(rng=1).engine)
        registry.publish("y", scenario.fresh_edge(rng=3).engine)
        perturbed = scenario.fresh_edge(rng=6).engine
        state = {
            key: value.copy()
            for key, value in perturbed.embedder.network.state_dict().items()
        }
        first = sorted(state)[0]
        state[first] = state[first] + 1e-3
        perturbed.embedder.network.load_state_dict(state)
        registry.publish("y", perturbed)
        assert registry.backbone_group_for("x") == ("x",)
        assert registry.backbone_group_for("y") == ("y",)
        assert len(registry.backbone_groups()) == 2

    def test_lazy_cohorts_group_on_load(self, scenario, package_path):
        registry = ModelRegistry(default_cohort="a")
        registry.publish("a", scenario.package)
        registry.register_lazy("b", package_path)
        assert registry.describe()["b"]["backbone"] is None  # not loaded
        # unloaded cohorts are excluded unless load=True resolves them
        assert registry.backbone_group_for("a") == ("a",)
        groups = registry.backbone_groups(load=True)
        assert len(groups) == 1
        (cohorts,) = groups.values()
        assert cohorts == ("a", "b")  # the saved package is the same clone

    def test_unpublish_forgets_the_hash(self, scenario):
        registry = ModelRegistry(default_cohort="x")
        registry.publish("x", scenario.fresh_edge(rng=1).engine)
        registry.publish("y", scenario.fresh_edge(rng=3).engine)
        registry.unpublish("y")
        assert registry.backbone_group_for("x") == ("x",)
        assert "y" not in registry.describe()


class TestFleetSpec:
    def test_parse_full_form(self):
        spec = parse_fleet_spec({
            "default": "pocket",
            "cohorts": {
                "wrist": {"package": "w.npz", "sessions": 4},
                "pocket": {"sessions": 2},
            },
        })
        assert spec.default == "pocket"
        assert spec.total_sessions == 6
        assert spec.cohorts[0] == CohortSpec("wrist", 4, "w.npz")
        assert spec.cohorts[1].package is None

    def test_parse_bare_mapping_defaults_to_first(self):
        spec = parse_fleet_spec({"wrist": {"sessions": 1}, "pocket": {}})
        assert spec.default == "wrist"
        assert [c.cohort for c in spec.cohorts] == ["wrist", "pocket"]

    def test_unknown_keys_rejected(self):
        with pytest.raises(SerializationError, match="unknown keys"):
            parse_fleet_spec({"cohorts": {"wrist": {"model": "w.npz"}}})

    def test_unknown_top_level_keys_rejected(self):
        """A typo'd 'default' must not silently fall back to cohort #1."""
        with pytest.raises(SerializationError, match="defualt"):
            parse_fleet_spec({
                "defualt": "pocket",
                "cohorts": {"wrist": {}, "pocket": {}},
            })

    def test_bad_shapes_rejected(self):
        with pytest.raises(SerializationError):
            parse_fleet_spec([])
        with pytest.raises(SerializationError):
            parse_fleet_spec({"cohorts": {}})
        with pytest.raises(SerializationError):
            parse_fleet_spec({"cohorts": {"wrist": "w.npz"}})

    def test_sessions_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="sessions"):
            parse_fleet_spec({"cohorts": {"wrist": {"sessions": 0}}})

    def test_default_must_name_a_cohort(self):
        with pytest.raises(ConfigurationError, match="default"):
            parse_fleet_spec({"default": "ghost",
                              "cohorts": {"wrist": {}}})

    def test_load_cohort_spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            {"cohorts": {"wrist": {"sessions": 3}}}
        ))
        spec = load_cohort_spec(path)
        assert spec.cohorts[0].sessions == 3
        with pytest.raises(SerializationError):
            load_cohort_spec(tmp_path / "missing.json")

    def test_registry_from_specs_uses_fallback(self, package_path):
        spec = parse_fleet_spec({
            "cohorts": {"wrist": {"sessions": 1}, "pocket": {"sessions": 1}}
        })
        registry = registry_from_specs(spec, fallback_package=package_path)
        assert registry.cohorts() == ("pocket", "wrist")
        assert registry.default_cohort == "wrist"
        assert not registry.loaded("wrist")  # lazy until first use
        assert registry.engine_for("wrist") is not None

    def test_registry_from_specs_requires_some_package(self):
        spec = parse_fleet_spec({"cohorts": {"wrist": {}}})
        with pytest.raises(ConfigurationError, match="no package"):
            registry_from_specs(spec)

    def test_cohorts_sharing_a_path_share_one_engine(self, package_path):
        """Same package file -> one engine object -> one shared batch."""
        import os

        relative = os.path.join(
            os.path.dirname(package_path), ".", "package.npz"
        )
        spec = parse_fleet_spec({
            "cohorts": {
                "wrist": {"sessions": 1},
                "pocket": {"sessions": 1, "package": package_path},
                "belt": {"sessions": 1, "package": relative},  # same file
            }
        })
        registry = registry_from_specs(spec, fallback_package=package_path)
        engines = {registry.engine_for(c) for c in ("wrist", "pocket", "belt")}
        assert len(engines) == 1  # loaded once, FleetServer batches once
        # the package stays available for device provisioning
        assert registry.package_for("wrist") is registry.package_for("belt")
