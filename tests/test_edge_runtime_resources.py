"""Unit tests for the device resource model."""

import numpy as np
import pytest

from repro.edge_runtime import (
    DEVICE_PRESETS,
    FLAGSHIP_PHONE,
    MIDRANGE_PHONE,
    RASPBERRY_PI,
    DeviceSpec,
    ResourceModel,
    forward_flops,
    training_flops,
)
from repro.exceptions import ConfigurationError
from repro.nn import BatchNorm1d, Linear, ReLU, Sequential, build_mlp


class TestDeviceSpecs:
    def test_presets_registered(self):
        assert set(DEVICE_PRESETS) == {
            "midrange_phone", "flagship_phone", "raspberry_pi"
        }

    def test_flagship_faster_than_midrange_than_pi(self):
        assert FLAGSHIP_PHONE.gflops > MIDRANGE_PHONE.gflops > RASPBERRY_PI.gflops

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec("x", gflops=0.0, ram_mb=1, storage_mb=1,
                       joules_per_gflop=1)
        with pytest.raises(ConfigurationError):
            DeviceSpec("x", gflops=1.0, ram_mb=0, storage_mb=1,
                       joules_per_gflop=1)


class TestFlopCounting:
    def test_linear_layer_flops(self):
        net = Sequential([Linear(10, 20, rng=0)])
        assert forward_flops(net) == 2 * 10 * 20

    def test_activations_free(self):
        with_act = Sequential([Linear(10, 20, rng=0), ReLU()])
        without = Sequential([Linear(10, 20, rng=0)])
        assert forward_flops(with_act) == forward_flops(without)

    def test_batchnorm_counted(self):
        net = Sequential([Linear(10, 20, rng=0), BatchNorm1d(20)])
        assert forward_flops(net) == 2 * 10 * 20 + 4 * 20

    def test_batch_scaling(self):
        net = Sequential([Linear(10, 20, rng=0)])
        assert forward_flops(net, batch_size=8) == 8 * forward_flops(net)

    def test_paper_backbone_flop_count(self):
        net = build_mlp(80, rng=0)  # paper dims
        expected = 2 * (80 * 1024 + 1024 * 512 + 512 * 128 + 128 * 64 + 64 * 128)
        assert forward_flops(net) == expected

    def test_training_flops_structure(self):
        net = Sequential([Linear(10, 20, rng=0)])
        assert training_flops(net, batch_size=4, n_batches=5, epochs=2) == (
            3 * forward_flops(net, 4) * 5 * 2
        )

    def test_bad_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            forward_flops(Sequential([Linear(2, 2, rng=0)]), batch_size=0)


class TestResourceModel:
    def test_latency_inverse_to_throughput(self):
        fast = ResourceModel(FLAGSHIP_PHONE)
        slow = ResourceModel(RASPBERRY_PI)
        assert fast.latency_ms(10**9) < slow.latency_ms(10**9)

    def test_latency_linear_in_flops(self):
        model = ResourceModel(MIDRANGE_PHONE)
        assert model.latency_ms(2 * 10**8) == pytest.approx(
            2 * model.latency_ms(10**8)
        )

    def test_paper_inference_is_milliseconds_on_midrange(self):
        # The full-size backbone must land in single-digit ms on a phone —
        # the paper's "imperceptible prediction latency ... few ms".
        net = build_mlp(80, rng=0)
        cost = ResourceModel(MIDRANGE_PHONE).inference_cost(net)
        assert cost["latency_ms"] < 10.0

    def test_energy_positive_and_linear(self):
        model = ResourceModel(MIDRANGE_PHONE)
        assert model.energy_joules(10**9) == pytest.approx(
            MIDRANGE_PHONE.joules_per_gflop
        )

    def test_retraining_cost_structure(self):
        net = build_mlp(10, hidden_dims=(8,), output_dim=4, rng=0)
        cost = ResourceModel().retraining_cost(
            net, n_samples=100, batch_pairs=32, epochs=10
        )
        assert cost["latency_s"] > 0
        assert cost["energy_joules"] > 0
        assert cost["flops"] > forward_flops(net)

    def test_retraining_cost_grows_with_epochs(self):
        net = build_mlp(10, hidden_dims=(8,), output_dim=4, rng=0)
        model = ResourceModel()
        c5 = model.retraining_cost(net, 100, 32, 5)
        c10 = model.retraining_cost(net, 100, 32, 10)
        assert c10["flops"] == pytest.approx(2 * c5["flops"])

    def test_fits_in_ram(self):
        model = ResourceModel(MIDRANGE_PHONE)
        assert model.fits_in_ram(1024)
        assert not model.fits_in_ram(int(MIDRANGE_PHONE.ram_mb * 1024**2))

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceModel().latency_ms(-1)
